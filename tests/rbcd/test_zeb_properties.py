"""Property-based ZEB sorted-insertion invariants (all M in {2,4,8,16}).

Complements ``test_zeb.py`` (which checks the vectorized builder against
the hardware-literal reference): these properties state what a correct
ZEB *is*, independently of either implementation —

* every per-pixel list is monotone in z, front-to-back;
* equal-z runs preserve arrival order (stable ties);
* a list never exceeds its capacity (M plus granted spares);
* with no spares, a list holds exactly the M nearest fragments seen;
* overflow accounting: every arrival that finds a full list either
  takes a spare or is an overflow event — nothing else;
* entries beyond ``counts`` are padding (object id -1).

Each property runs against both implementations so a bug in one cannot
hide behind agreement with the other.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.config import RBCDConfig
from repro.rbcd.zeb import build_zeb_tile, insert_sequential

TILE_PIXELS = 64
M_VALUES = (2, 4, 8, 16)

# Few pixels and a narrow z range force deep lists, z ties, and
# overflow at every M under test.
fragments_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),    # pixel
        st.integers(min_value=0, max_value=20),   # z code
        st.integers(min_value=0, max_value=5),    # object id
        st.booleans(),                            # front face
    ),
    max_size=120,
)

spares_strategy = st.integers(min_value=0, max_value=6)


def _config(m: int, spares: int = 0) -> RBCDConfig:
    return RBCDConfig(list_length=m, z_bits=18, id_bits=13,
                      spare_entries_per_tile=spares)


def _both_tiles(fragments, config):
    seq = insert_sequential(fragments, config, TILE_PIXELS)
    if fragments:
        pixel, z, oid, front = map(np.array, zip(*fragments))
    else:
        pixel = z = oid = np.empty(0, dtype=np.int64)
        front = np.empty(0, dtype=bool)
    vec = build_zeb_tile(pixel, z, oid, np.array(front, dtype=bool),
                         config, depths_are_codes=True)
    return seq, vec


def _expected_survivors(fragments, m: int) -> dict[int, list[tuple]]:
    """Reference keep-M-nearest filter (no spares): per pixel, the M
    nearest fragments under a stable (z, arrival) order."""
    by_pixel: dict[int, list[tuple]] = {}
    for arrival, (pixel, z, oid, front) in enumerate(fragments):
        by_pixel.setdefault(pixel, []).append((z, arrival, oid, front))
    return {
        pixel: sorted(entries)[:m] for pixel, entries in by_pixel.items()
    }


@pytest.mark.parametrize("m", M_VALUES)
class TestSortedInsertionInvariants:
    @settings(max_examples=60, deadline=None)
    @given(frags=fragments_strategy, spares=spares_strategy)
    def test_lists_monotone_front_to_back(self, m, frags, spares):
        for tile in _both_tiles(frags, _config(m, spares)):
            for row in range(tile.non_empty_lists):
                n = int(tile.counts[row])
                z = tile.z_codes[row, :n]
                assert (np.diff(z) >= 0).all(), z.tolist()

    @settings(max_examples=60, deadline=None)
    @given(frags=fragments_strategy, spares=spares_strategy)
    def test_equal_z_ties_keep_arrival_order(self, m, frags, spares):
        # Within an equal-z run, surviving elements must appear in the
        # order their fragments arrived — the strict-compare insertion
        # never swaps equals.
        arrival_of = {}
        for arrival, (pixel, z, oid, front) in enumerate(frags):
            arrival_of.setdefault((pixel, z), []).append((arrival, oid, front))
        for tile in _both_tiles(frags, _config(m, spares)):
            for row in range(tile.non_empty_lists):
                pixel = int(tile.pixel_index[row])
                n = int(tile.counts[row])
                z = tile.z_codes[row, :n]
                ids = tile.object_ids[row, :n]
                fronts = tile.is_front[row, :n]
                for z_value in np.unique(z):
                    run = np.flatnonzero(z == z_value)
                    got = [(int(ids[i]), bool(fronts[i])) for i in run]
                    candidates = [
                        (oid, front)
                        for _, oid, front in sorted(arrival_of[(pixel, int(z_value))])
                    ]
                    # The run must be a prefix-preserving subsequence of
                    # the arrivals; with drop-farthest semantics on one
                    # z value it is exactly the first len(run) arrivals.
                    assert got == candidates[: len(run)]

    @settings(max_examples=60, deadline=None)
    @given(frags=fragments_strategy, spares=spares_strategy)
    def test_counts_within_capacity_and_padding(self, m, frags, spares):
        config = _config(m, spares)
        for tile in _both_tiles(frags, config):
            assert (tile.counts >= 1).all()  # only non-empty lists stored
            assert (tile.counts <= m + tile.spare_allocations).all()
            assert int(tile.counts.sum()) <= len(frags)
            for row in range(tile.non_empty_lists):
                n = int(tile.counts[row])
                assert (tile.object_ids[row, n:] == -1).all()

    @settings(max_examples=60, deadline=None)
    @given(frags=fragments_strategy)
    def test_keeps_exactly_m_nearest(self, m, frags):
        expected = _expected_survivors(frags, m)
        for tile in _both_tiles(frags, _config(m)):
            assert tile.non_empty_lists == len(expected)
            for row in range(tile.non_empty_lists):
                pixel = int(tile.pixel_index[row])
                n = int(tile.counts[row])
                want = expected[pixel]
                assert n == len(want)
                got = list(zip(
                    tile.z_codes[row, :n].tolist(),
                    tile.object_ids[row, :n].tolist(),
                    tile.is_front[row, :n].tolist(),
                ))
                assert got == [(z, oid, front) for z, _, oid, front in want]

    @settings(max_examples=60, deadline=None)
    @given(frags=fragments_strategy, spares=spares_strategy)
    def test_overflow_and_spare_accounting(self, m, frags, spares):
        # Each arrival whose pixel already holds >= capacity elements is
        # a full-list attempt; with rank counted against the base M,
        # attempts = #(per-pixel arrival rank >= M), and every attempt
        # is resolved as exactly one spare grant or one overflow event.
        ranks: dict[int, int] = {}
        attempts = 0
        for pixel, _, _, _ in frags:
            if ranks.get(pixel, 0) >= m:
                attempts += 1
            ranks[pixel] = ranks.get(pixel, 0) + 1
        for tile in _both_tiles(frags, _config(m, spares)):
            assert tile.insertions == len(frags)
            assert tile.spare_allocations == min(spares, attempts)
            assert tile.overflow_events + tile.spare_allocations == attempts

    @settings(max_examples=40, deadline=None)
    @given(frags=fragments_strategy, spares=spares_strategy)
    def test_spares_never_lose_elements(self, m, frags, spares):
        # Growing the spare pool monotonically grows (or keeps) the
        # number of surviving elements — spares only add capacity.
        base_seq, base_vec = _both_tiles(frags, _config(m, 0))
        spared_seq, spared_vec = _both_tiles(frags, _config(m, spares))
        assert spared_seq.elements >= base_seq.elements
        assert spared_vec.elements >= base_vec.elements
        assert spared_seq.elements - base_seq.elements <= spares
