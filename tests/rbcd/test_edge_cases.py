"""RBCD edge cases: extreme configurations and quantization ties."""

import numpy as np
import pytest

from repro.gpu.config import GPUConfig, RBCDConfig
from repro.gpu.pipeline import GPU
from repro.rbcd.element import max_object_id, quantize_depth
from repro.rbcd.overlap import analyze_pixel_list, analyze_tile
from repro.rbcd.zeb import build_zeb_tile
from tests.conftest import two_boxes_frame


class TestExtremeListLengths:
    def test_m1_holds_only_nearest(self):
        cfg = RBCDConfig(list_length=1, z_bits=18, id_bits=13)
        tile = build_zeb_tile(
            np.array([0, 0, 0]), np.array([30, 10, 20]),
            np.array([1, 2, 3]), np.ones(3, dtype=bool),
            cfg, depths_are_codes=True,
        )
        assert tile.counts.tolist() == [1]
        assert tile.object_ids[0, 0] == 2
        assert tile.overflow_events == 2

    def test_m1_cannot_detect_anything(self, tiny_config):
        config = tiny_config.with_rbcd(list_length=1)
        result = GPU(config).render_frame(two_boxes_frame(tiny_config, 0.3))
        assert len(result.collisions) == 0

    def test_large_m_equals_unbounded(self, small_config):
        frame = two_boxes_frame(small_config, 0.7)
        m64 = GPU(
            small_config.with_rbcd(list_length=64, z_bits=18, id_bits=13,
                                   ff_stack_entries=64)
        ).render_frame(frame)
        m128 = GPU(
            small_config.with_rbcd(list_length=128, z_bits=18, id_bits=13,
                                   ff_stack_entries=128)
        ).render_frame(frame)
        assert m64.collisions.as_sorted_pairs() == m128.collisions.as_sorted_pairs()
        assert m64.stats.zeb_overflow_events == 0


class TestStackSmallerThanList:
    """Matched entries are *tagged, never popped* (Section 3.5), so a
    stack slot is consumed by every front face of the list — T must be
    at least the per-list front-face count, which the default T == M
    guarantees."""

    def test_t1_second_front_overflows_even_after_match(self):
        cfg = RBCDConfig(ff_stack_entries=1)
        # [A ]A [B ]B : the matched [A still occupies the only slot, so
        # [B is dropped and ]B goes unmatched — no false pair appears.
        result = analyze_pixel_list(
            [0, 1, 2, 3], [1, 1, 2, 2], [True, False, True, False], cfg
        )
        assert result.pair_records == 0
        assert result.stack_overflows == 1
        assert result.unmatched_backfaces == 1

    def test_t1_nested_pair_lost_but_no_false_positive(self):
        cfg = RBCDConfig(ff_stack_entries=1)
        # [A [B ]A ]B : the [B push is dropped; the true pair is missed
        # (a stack-overflow loss) but nothing spurious is reported.
        result = analyze_pixel_list(
            [0, 1, 2, 3], [1, 2, 1, 2], [True, True, False, False], cfg
        )
        assert result.stack_overflows == 1
        assert result.unmatched_backfaces == 1
        assert result.pair_records == 0

    def test_default_t_covers_full_lists(self):
        cfg = RBCDConfig()  # T == M == 8
        # All-front list of M entries: exactly fills the stack.
        result = analyze_pixel_list(
            list(range(8)), [1, 2, 3, 4, 5, 6, 7, 0], [True] * 8, cfg
        )
        assert result.stack_overflows == 0


class TestQuantizationTies:
    def test_coincident_faces_still_ordered_by_arrival(self):
        cfg = RBCDConfig()
        z = quantize_depth(np.array([0.5, 0.5, 0.5, 0.5]), cfg)
        tile = build_zeb_tile(
            np.zeros(4, dtype=np.int64), z,
            np.array([1, 1, 2, 2]),
            np.array([True, False, True, False]),
            cfg, depths_are_codes=True,
        )
        # All four codes identical; arrival order preserved:
        # [A ]A [B ]B -> case 1, no collision.
        result = analyze_tile(tile, cfg)
        assert result.pair_records == 0

    def test_sub_quantum_gap_reads_as_contact(self):
        """Two faces closer than one z quantum become equal codes; with
        interleaved arrival, the closed-interval semantics report
        contact — the hardware's resolution limit."""
        cfg = RBCDConfig()
        quantum = 1.0 / ((1 << cfg.z_bits) - 1)
        z = np.array([0.5, 0.5 + 0.4 * quantum, 0.5 + 0.8 * quantum, 0.6])
        codes = quantize_depth(z, cfg)
        tile = build_zeb_tile(
            np.zeros(4, dtype=np.int64), codes,
            np.array([1, 2, 1, 2]),
            np.array([True, True, False, False]),
            cfg, depths_are_codes=True,
        )
        result = analyze_tile(tile, cfg)
        assert result.pair_records >= 1


class TestIdBoundaries:
    def test_max_id_flows_through_unit(self, tiny_config):
        from repro.rbcd.unit import RBCDUnit

        unit = RBCDUnit(tiny_config)
        top = max_object_id(tiny_config.rbcd)
        x = np.array([1, 1, 1, 1], dtype=np.int32)
        y = np.zeros(4, dtype=np.int32)
        z = np.array([0.1, 0.2, 0.3, 0.4])
        oid = np.array([top, top - 1, top, top - 1])
        front = np.array([True, True, False, False])
        unit.process_tile(0, x, y, z, oid, front)
        assert (top - 1, top) in unit.report

    def test_id_zero_valid(self):
        cfg = RBCDConfig()
        result = analyze_pixel_list(
            [0, 1, 2, 3], [0, 1, 0, 1], [True, True, False, False], cfg
        )
        assert result.pair_records == 1
        assert set(result.pair_id_a.tolist()) | set(result.pair_id_b.tolist()) == {0, 1}
