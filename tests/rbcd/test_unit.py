"""RBCDUnit tests: tile processing, coordinates, fallback, limits."""

import numpy as np
import pytest

from repro.gpu.config import GPUConfig
from repro.rbcd.unit import RBCDUnit, _multi_object_lists
from repro.rbcd.zeb import build_zeb_tile

CFG = GPUConfig().with_screen(64, 32)  # 4 x 2 tiles


def colliding_tile_fragments(x0=0, y0=0):
    """Fragments of two overlapping objects on one pixel (global coords)."""
    x = np.array([x0 + 3] * 4, dtype=np.int32)
    y = np.array([y0 + 5] * 4, dtype=np.int32)
    z = np.array([0.1, 0.2, 0.3, 0.4])
    oid = np.array([1, 2, 1, 2], dtype=np.int64)  # [1 [2 ]1 ]2 : case 2
    front = np.array([True, True, False, False])
    return x, y, z, oid, front


class TestProcessTile:
    def test_pair_detected_with_global_coordinates(self):
        unit = RBCDUnit(CFG)
        # Tile 5 of a 4-wide grid is at tile coords (1, 1): origin (16, 16).
        x, y, z, oid, front = colliding_tile_fragments(16, 16)
        unit.process_tile(5, x, y, z, oid, front)
        assert (1, 2) in unit.report
        (contact,) = unit.report.contacts[next(iter(unit.report.pairs))]
        assert (contact.x, contact.y) == (19, 21)
        assert contact.z_front == pytest.approx(0.2, abs=1e-4)
        assert contact.z_back == pytest.approx(0.3, abs=1e-4)

    def test_counters_accumulate_across_tiles(self):
        unit = RBCDUnit(CFG)
        unit.process_tile(0, *colliding_tile_fragments(0, 0))
        unit.process_tile(1, *colliding_tile_fragments(16, 0))
        assert unit.insertions == 8
        assert unit.report.pair_records_written == 2

    def test_reset_clears_state(self):
        unit = RBCDUnit(CFG)
        unit.process_tile(0, *colliding_tile_fragments())
        unit.reset()
        assert unit.insertions == 0
        assert len(unit.report) == 0

    def test_cycle_outputs(self):
        unit = RBCDUnit(CFG)
        result = unit.process_tile(0, *colliding_tile_fragments())
        assert result.insertion_cycles == 4.0
        assert result.overlap_cycles > 0

    def test_empty_tile_costs_nothing(self):
        unit = RBCDUnit(CFG)
        empty = np.empty(0, dtype=np.int32)
        result = unit.process_tile(
            0, empty, empty, np.empty(0), np.empty(0, dtype=np.int64),
            np.empty(0, dtype=bool),
        )
        assert result.overlap_cycles == 0.0
        assert result.insertion_cycles == 0.0

    def test_oversized_object_id_rejected(self):
        unit = RBCDUnit(CFG)
        x, y, z, oid, front = colliding_tile_fragments()
        oid = oid.copy()
        oid[0] = 1 << 13  # exceeds the 13-bit id field
        with pytest.raises(ValueError):
            unit.process_tile(0, x, y, z, oid, front)


class TestMultiObjectFilter:
    def make_tile(self, rows):
        pixel, z, oid, front = [], [], [], []
        for p, elements in rows:
            for zc, o in elements:
                pixel.append(p)
                z.append(zc)
                oid.append(o)
                front.append(True)
        return build_zeb_tile(
            np.array(pixel), np.array(z), np.array(oid),
            np.array(front, dtype=bool), CFG.rbcd, depths_are_codes=True,
        )

    def test_single_object_lists_skipped(self):
        tile = self.make_tile([(0, [(0, 1), (1, 1)]), (1, [(0, 1), (1, 2)])])
        mask = _multi_object_lists(tile)
        assert mask.tolist() == [False, True]

    def test_filter_never_drops_pair_producing_lists(self):
        # Any list that could produce a pair has >= 2 distinct ids.
        unit = RBCDUnit(CFG)
        result = unit.process_tile(0, *colliding_tile_fragments())
        assert unit.lists_analyzed == 1
        assert result.overlap.pair_records == 1

    def test_overlap_cycles_scale_with_contested_lists_only(self):
        unit = RBCDUnit(CFG)
        # 20 single-object pixels + 1 contested pixel.
        x = np.array(list(range(10)) * 2 + [12] * 4, dtype=np.int32)
        y = np.zeros(24, dtype=np.int32)
        z = np.concatenate([np.linspace(0.1, 0.9, 20), [0.1, 0.2, 0.3, 0.4]])
        oid = np.array([1] * 20 + [1, 2, 1, 2], dtype=np.int64)
        front = np.array([True, False] * 10 + [True, True, False, False])
        result = unit.process_tile(0, x, y, z, oid, front)
        assert unit.lists_analyzed == 1
        assert unit.elements_read == 4


class TestFallback:
    def test_overflow_rate_property(self):
        config = CFG.with_rbcd(list_length=1)
        unit = RBCDUnit(config)
        x = np.array([0, 0, 0], dtype=np.int32)
        y = np.zeros(3, dtype=np.int32)
        unit.process_tile(0, x, y, np.array([0.1, 0.2, 0.3]),
                          np.array([1, 2, 3]), np.ones(3, dtype=bool))
        assert unit.overflow_rate == pytest.approx(2.0 / 3.0)

    def test_cpu_fallback_threshold(self):
        config = CFG.with_rbcd(list_length=1, cpu_fallback_overflow_rate=0.5)
        unit = RBCDUnit(config)
        x = np.array([0, 0, 0], dtype=np.int32)
        y = np.zeros(3, dtype=np.int32)
        unit.process_tile(0, x, y, np.array([0.1, 0.2, 0.3]),
                          np.array([1, 2, 3]), np.ones(3, dtype=bool))
        assert unit.wants_cpu_fallback()

    def test_no_fallback_by_default(self):
        unit = RBCDUnit(CFG)
        unit.process_tile(0, *colliding_tile_fragments())
        assert not unit.wants_cpu_fallback()
