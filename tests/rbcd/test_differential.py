"""Differential harness: serial ≡ vectorized ≡ parallel ZEB builds.

Randomized (seeded) fragment soups are pushed through the three
implementations of the ZEB insertion path —

* :func:`insert_sequential`, the hardware-literal executable spec;
* :func:`build_zeb_tile`, the vectorized builder;
* the parallel tile engine (thread and process pools, several worker
  counts) feeding :func:`compute_tile`;

— and every observable is asserted bit-identical: z-codes, object ids,
facing bits, per-list counts, and the overflow/spare counters, across
M ∈ {2, 4, 8}, spare-pool on/off, and worker counts {1, 2, 8}.
"""

import numpy as np
import pytest

from repro.gpu.config import GPUConfig, RBCDConfig
from repro.gpu.parallel import (
    ProcessPoolTileExecutor,
    SerialTileExecutor,
    ThreadPoolTileExecutor,
    gather_tile_tasks,
)
from repro.gpu.raster import FragmentSoup
from repro.rbcd.element import quantize_depth
from repro.rbcd.unit import RBCDUnit
from repro.rbcd.zeb import build_zeb_tile, insert_sequential

TILE_PIXELS = 256  # one 16x16 tile


def random_tile_fragments(seed: int, n: int = 400, hot_pixels: int = 5):
    """A seeded fragment soup for one tile, skewed to overflow.

    Half the fragments pile onto a few hot pixels (forcing list
    overflow at small M), the rest spread uniformly.
    """
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, TILE_PIXELS, size=hot_pixels)
    pixel = np.where(
        rng.random(n) < 0.5,
        hot[rng.integers(0, hot_pixels, size=n)],
        rng.integers(0, TILE_PIXELS, size=n),
    ).astype(np.int64)
    z = rng.random(n)
    oid = rng.integers(0, 6, size=n).astype(np.int64)
    front = rng.random(n) < 0.5
    return pixel, z, oid, front


def assert_zeb_equal(a, b):
    """Bit-identical ZEB contents and counters."""
    np.testing.assert_array_equal(a.pixel_index, b.pixel_index)
    np.testing.assert_array_equal(a.counts, b.counts)
    np.testing.assert_array_equal(a.z_codes, b.z_codes)
    np.testing.assert_array_equal(a.object_ids, b.object_ids)
    np.testing.assert_array_equal(a.is_front, b.is_front)
    assert a.insertions == b.insertions
    assert a.overflow_events == b.overflow_events
    assert a.spare_allocations == b.spare_allocations


@pytest.mark.parametrize("m", [2, 4, 8])
@pytest.mark.parametrize("spare", [0, 12])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_sequential_equals_vectorized(m, spare, seed):
    config = RBCDConfig(list_length=m, spare_entries_per_tile=spare)
    pixel, z, oid, front = random_tile_fragments(seed)
    codes = quantize_depth(z, config)

    reference = insert_sequential(
        list(zip(pixel.tolist(), codes.tolist(), oid.tolist(), front.tolist())),
        config,
        TILE_PIXELS,
    )
    vectorized = build_zeb_tile(
        pixel, codes, oid, front, config, depths_are_codes=True
    )
    assert_zeb_equal(reference, vectorized)
    if spare == 0 and m == 2:
        assert reference.overflow_events > 0  # the soup actually overflows


@pytest.mark.parametrize("m", [2, 4, 8])
def test_sequential_equals_vectorized_with_duplicate_depths(m):
    # Equal z codes must keep arrival order in both paths.
    config = RBCDConfig(list_length=m)
    rng = np.random.default_rng(7)
    n = 200
    pixel = rng.integers(0, 4, size=n).astype(np.int64)  # 4 hot pixels
    codes = rng.integers(0, 3, size=n).astype(np.int64)  # heavy z ties
    oid = np.arange(n, dtype=np.int64) % 5
    front = (np.arange(n) % 2) == 0

    reference = insert_sequential(
        list(zip(pixel.tolist(), codes.tolist(), oid.tolist(), front.tolist())),
        config,
        TILE_PIXELS,
    )
    vectorized = build_zeb_tile(
        pixel, codes, oid, front, config, depths_are_codes=True
    )
    assert_zeb_equal(reference, vectorized)


def test_spare_pool_exhaustion_matches():
    # Fewer spares than overflow attempts: the first arrivals win them.
    config = RBCDConfig(list_length=2, spare_entries_per_tile=3)
    pixel = np.zeros(10, dtype=np.int64)
    codes = np.arange(10, 0, -1, dtype=np.int64)  # strictly nearer each time
    oid = np.arange(10, dtype=np.int64) % 4
    front = np.ones(10, dtype=bool)
    reference = insert_sequential(
        list(zip(pixel.tolist(), codes.tolist(), oid.tolist(), front.tolist())),
        config,
        TILE_PIXELS,
    )
    vectorized = build_zeb_tile(
        pixel, codes, oid, front, config, depths_are_codes=True
    )
    assert_zeb_equal(reference, vectorized)
    assert reference.spare_allocations == 3
    assert reference.overflow_events == 10 - 2 - 3


# ---------------------------------------------------------------------------
# Parallel path
# ---------------------------------------------------------------------------

SCREEN = (64, 32)  # 4 x 2 tiles of 16 x 16


def random_frame_soup(seed: int, n: int = 1200) -> FragmentSoup:
    """A seeded multi-tile fragment soup (global coordinates)."""
    rng = np.random.default_rng(seed)
    width, height = SCREEN
    x = rng.integers(0, width, size=n).astype(np.int32)
    y = rng.integers(0, height, size=n).astype(np.int32)
    z = rng.random(n)
    oid = rng.integers(-1, 6, size=n).astype(np.int64)  # -1: non-collisionable
    front = rng.random(n) < 0.5
    zeros = np.zeros(n, dtype=np.int64)
    return FragmentSoup(
        x=x, y=y, z=z, object_id=oid, front=front,
        tagged=np.zeros(n, dtype=bool),
        draw_index=zeros, tri_index=zeros.copy(),
    )


def unit_fingerprint(unit: RBCDUnit) -> dict:
    report = unit.report
    return {
        "insertions": unit.insertions,
        "overflow_events": unit.overflow_events,
        "spare_allocations": unit.spare_allocations,
        "lists_analyzed": unit.lists_analyzed,
        "elements_read": unit.elements_read,
        "stack_overflows": unit.stack_overflows,
        "unmatched_backfaces": unit.unmatched_backfaces,
        "pair_records_written": report.pair_records_written,
        "pairs": report.as_sorted_pairs(),
        "contacts": {
            (p.id_a, p.id_b): [(c.x, c.y, c.z_front, c.z_back) for c in pts]
            for p, pts in report.contacts.items()
        },
    }


def run_serial_reference(config: GPUConfig, soup: FragmentSoup):
    unit = RBCDUnit(config)
    per_tile = {}
    for task in gather_tile_tasks(soup, config):
        result = unit.process_tile(
            task.tile_index, task.x, task.y, task.z, task.object_id, task.front
        )
        per_tile[task.tile_index] = result
    return unit, per_tile


@pytest.mark.parametrize("m", [2, 4, 8])
@pytest.mark.parametrize("workers", [1, 2, 8])
def test_parallel_path_matches_serial_reference(m, workers):
    config = (
        GPUConfig().with_screen(*SCREEN)
        .with_rbcd(list_length=m)
        .with_executor(workers=workers, backend="thread", chunk_tiles=2)
    )
    soup = random_frame_soup(seed=m * 10 + workers)
    serial_unit, per_tile = run_serial_reference(config, soup)

    tasks = gather_tile_tasks(soup, config)
    with ThreadPoolTileExecutor(workers) as executor:
        results = executor.run(config, tasks)

    # Results arrive in tile-schedule order with bit-identical tiles...
    assert [r.tile_index for r in results] == [t.tile_index for t in tasks]
    for result in results:
        assert_zeb_equal(result.zeb, per_tile[result.tile_index].zeb)
        assert result.insertion_cycles == per_tile[result.tile_index].insertion_cycles
        assert result.overlap_cycles == per_tile[result.tile_index].overlap_cycles

    # ...and the deterministic merge reproduces the serial unit exactly.
    merged_unit = RBCDUnit(config)
    for result in results:
        merged_unit.absorb(result)
    assert unit_fingerprint(merged_unit) == unit_fingerprint(serial_unit)


@pytest.mark.parametrize("spare", [0, 8])
@pytest.mark.parametrize("workers", [2, 8])
def test_process_pool_matches_serial_reference(spare, workers):
    config = (
        GPUConfig().with_screen(*SCREEN)
        .with_rbcd(list_length=4, spare_entries_per_tile=spare)
        .with_executor(workers=workers, backend="process", chunk_tiles=3)
    )
    soup = random_frame_soup(seed=100 + spare + workers)
    serial_unit, per_tile = run_serial_reference(config, soup)

    tasks = gather_tile_tasks(soup, config)
    with ProcessPoolTileExecutor(workers) as executor:
        results = executor.run(config, tasks)

    merged_unit = RBCDUnit(config)
    for result in results:
        assert_zeb_equal(result.zeb, per_tile[result.tile_index].zeb)
        merged_unit.absorb(result)
    assert unit_fingerprint(merged_unit) == unit_fingerprint(serial_unit)


def test_parallel_tile_matches_sequential_spec_per_tile():
    # Close the triangle: executor results == insert_sequential per tile.
    config = GPUConfig().with_screen(*SCREEN).with_rbcd(list_length=4)
    soup = random_frame_soup(seed=42)
    tasks = gather_tile_tasks(soup, config)
    with ThreadPoolTileExecutor(2) as executor:
        results = executor.run(config, tasks)
    ts = config.tile_size
    for task, result in zip(tasks, results):
        local = (task.y % ts).astype(np.int64) * ts + (task.x % ts).astype(np.int64)
        codes = quantize_depth(task.z, config.rbcd)
        reference = insert_sequential(
            list(zip(local.tolist(), codes.tolist(),
                     task.object_id.tolist(), task.front.tolist())),
            config.rbcd,
            config.tile_pixels,
        )
        assert_zeb_equal(reference, result.zeb)


def test_serial_executor_is_the_reference():
    config = GPUConfig().with_screen(*SCREEN).with_rbcd(list_length=4)
    soup = random_frame_soup(seed=5)
    tasks = gather_tile_tasks(soup, config)
    serial_unit, per_tile = run_serial_reference(config, soup)
    results = SerialTileExecutor().run(config, tasks)
    merged = RBCDUnit(config)
    for result in results:
        merged.absorb(result)
    assert unit_fingerprint(merged) == unit_fingerprint(serial_unit)


def test_gather_tile_tasks_orders_tiles_and_preserves_arrival():
    config = GPUConfig().with_screen(*SCREEN)
    soup = random_frame_soup(seed=9)
    tasks = gather_tile_tasks(soup, config)
    tiles = [t.tile_index for t in tasks]
    assert tiles == sorted(tiles)
    assert len(set(tiles)) == len(tiles)
    # Fragment counts cover exactly the collisionable fragments.
    assert sum(t.fragment_count for t in tasks) == int((soup.object_id >= 0).sum())
    # Within a tile, fragments keep frame arrival order.
    tile_of = soup.tile_index(config)
    for task in tasks:
        idx = np.flatnonzero((tile_of == task.tile_index) & (soup.object_id >= 0))
        np.testing.assert_array_equal(task.x, soup.x[idx])
        np.testing.assert_array_equal(task.y, soup.y[idx])


def test_empty_soup_yields_no_tasks():
    config = GPUConfig().with_screen(*SCREEN)
    assert gather_tile_tasks(FragmentSoup.empty(), config) == []


# ---------------------------------------------------------------------------
# Kernel-backend matrix
# ---------------------------------------------------------------------------

from repro.gpu import kernels as _kernels  # noqa: E402


def _backend_matrix() -> list[str]:
    """Every kernel backend runnable here (numba joins when installed)."""
    return list(_kernels.available_backends())


@pytest.mark.parametrize("backend", _backend_matrix())
@pytest.mark.parametrize("workers", [1, 2, 8])
def test_backend_matrix_serial_vs_parallel(backend, workers):
    """serial ≡ vectorized ≡ parallel, for every kernel backend.

    The serial reference always runs the ``reference`` backend; the
    parallel run uses the backend under test at several worker counts.
    Fingerprints must agree across the whole matrix, which pins both
    axes at once: kernel implementation and execution strategy.
    """
    soup = random_frame_soup(seed=31)
    serial_config = (
        GPUConfig().with_screen(*SCREEN)
        .with_rbcd(list_length=4)
        .with_kernel_backend("reference")
    )
    serial_unit, _ = run_serial_reference(serial_config, soup)

    config = (
        serial_config
        .with_kernel_backend(backend)
        .with_executor(workers=workers, backend="thread", chunk_tiles=2)
    )
    tasks = gather_tile_tasks(soup, config)
    with ThreadPoolTileExecutor(workers) as executor:
        results = executor.run(config, tasks)
    merged = RBCDUnit(config)
    for result in results:
        merged.absorb(result)
    assert unit_fingerprint(merged) == unit_fingerprint(serial_unit)


@pytest.mark.parametrize("backend", _backend_matrix())
def test_backend_matrix_process_pool(backend):
    """Workers resolve the backend by name from the pickled config."""
    soup = random_frame_soup(seed=77)
    serial_config = (
        GPUConfig().with_screen(*SCREEN)
        .with_rbcd(list_length=4, spare_entries_per_tile=6)
        .with_kernel_backend("reference")
    )
    serial_unit, _ = run_serial_reference(serial_config, soup)

    config = (
        serial_config
        .with_kernel_backend(backend)
        .with_executor(workers=2, backend="process", chunk_tiles=3)
    )
    tasks = gather_tile_tasks(soup, config)
    with ProcessPoolTileExecutor(2) as executor:
        results = executor.run(config, tasks)
    merged = RBCDUnit(config)
    for result in results:
        merged.absorb(result)
    assert unit_fingerprint(merged) == unit_fingerprint(serial_unit)
