"""Property/fuzz tests for the Z-Overlap Test.

Drives :func:`analyze_pixel_list` (the hardware-literal reference) and
:func:`analyze_tile` (the vectorized lock-step version) over adversarial
and randomized lists, asserting identical pair sets and identical
``stack_overflows`` / ``unmatched_backfaces`` counters.
"""

import numpy as np
import pytest

from repro.gpu.config import RBCDConfig
from repro.rbcd.overlap import analyze_pixel_list, analyze_tile
from repro.rbcd.zeb import ZEBTile


def tile_from_rows(rows: list[list[tuple[int, int, bool]]]) -> ZEBTile:
    """Build a ZEBTile from per-row ``(z_code, object_id, is_front)``
    lists (already front-to-back sorted, as the ZEB guarantees)."""
    num_rows = len(rows)
    max_len = max((len(r) for r in rows), default=0)
    z = np.zeros((num_rows, max_len), dtype=np.int64)
    oid = np.full((num_rows, max_len), -1, dtype=np.int64)
    front = np.zeros((num_rows, max_len), dtype=bool)
    counts = np.zeros(num_rows, dtype=np.int64)
    for i, row in enumerate(rows):
        counts[i] = len(row)
        for j, (zc, o, f) in enumerate(row):
            z[i, j], oid[i, j], front[i, j] = zc, o, f
    return ZEBTile(
        pixel_index=np.arange(num_rows, dtype=np.int64),
        counts=counts,
        z_codes=z,
        object_ids=oid,
        is_front=front,
        insertions=int(counts.sum()),
    )


def pairs_of(result, row_offset=0):
    """Comparable multiset of pair records (with originating row)."""
    return sorted(
        zip(
            (result.pair_row + row_offset).tolist(),
            result.pair_id_a.tolist(),
            result.pair_id_b.tolist(),
            result.pair_z_front.tolist(),
            result.pair_z_back.tolist(),
        )
    )


def assert_tile_matches_reference(rows, config):
    """analyze_tile ≡ analyze_pixel_list applied row by row."""
    tile = tile_from_rows(rows)
    vec = analyze_tile(tile, config)

    ref_pairs = []
    overflows = 0
    unmatched = 0
    elements = 0
    for i, row in enumerate(rows):
        z = [e[0] for e in row]
        oid = [e[1] for e in row]
        front = [e[2] for e in row]
        ref = analyze_pixel_list(z, oid, front, config)
        ref_pairs.extend(
            (i, a, b, zf, zb)
            for (_, a, b, zf, zb) in pairs_of(ref)
        )
        overflows += ref.stack_overflows
        unmatched += ref.unmatched_backfaces
        elements += ref.elements_read

    assert pairs_of(vec) == sorted(ref_pairs)
    assert vec.stack_overflows == overflows
    assert vec.unmatched_backfaces == unmatched
    assert vec.elements_read == elements
    assert vec.pair_records == len(ref_pairs)


CFG = RBCDConfig()


class TestAdversarialLists:
    def test_all_front_faces_yield_nothing(self):
        rows = [[(z, z % 3, True) for z in range(8)]]
        assert_tile_matches_reference(rows, CFG)
        result = analyze_tile(tile_from_rows(rows), CFG)
        assert result.pair_records == 0
        assert result.unmatched_backfaces == 0

    def test_all_back_faces_all_unmatched(self):
        rows = [[(z, z % 3, False) for z in range(8)]]
        assert_tile_matches_reference(rows, CFG)
        result = analyze_tile(tile_from_rows(rows), CFG)
        assert result.pair_records == 0
        assert result.unmatched_backfaces == 8

    def test_nested_same_id_concave_layers_filtered(self):
        # [1 [1 ]1 ]1 — one concave object's nested layers: the self
        # pairs are filtered, both backs still match their fronts.
        rows = [[(0, 1, True), (1, 1, True), (2, 1, False), (3, 1, False)]]
        assert_tile_matches_reference(rows, CFG)
        result = analyze_tile(tile_from_rows(rows), CFG)
        assert result.pair_records == 0
        assert result.unmatched_backfaces == 0

    def test_nested_concave_layers_inside_another_object(self):
        # [2 [1 [1 ]1 ]1 ]2: object 1's two layers sit inside object 2.
        rows = [[
            (0, 2, True), (1, 1, True), (2, 1, True),
            (3, 1, False), (4, 1, False), (5, 2, False),
        ]]
        assert_tile_matches_reference(rows, CFG)
        result = analyze_tile(tile_from_rows(rows), CFG)
        # Object 2's back face sees both unmatched-above entries of 1.
        assert {(a, b) for a, b in zip(result.pair_id_a, result.pair_id_b)} == {
            (1, 2)
        }

    def test_ff_stack_overflow_exactly_at_boundary(self):
        t = CFG.ff_stack_entries
        # t fronts fill the stack; the (t+1)-th push is dropped, and its
        # back face is left unmatched.
        rows = [
            [(i, i, True) for i in range(t)]
            + [(t, 99, True)]
            + [(t + 1, 99, False)]
        ]
        assert_tile_matches_reference(rows, CFG)
        result = analyze_tile(tile_from_rows(rows), CFG)
        assert result.stack_overflows == 1
        assert result.unmatched_backfaces == 1

    def test_one_below_boundary_does_not_overflow(self):
        t = CFG.ff_stack_entries
        rows = [[(i, i, True) for i in range(t)]]
        assert_tile_matches_reference(rows, CFG)
        assert analyze_tile(tile_from_rows(rows), CFG).stack_overflows == 0

    def test_tiny_stack_interleaved(self):
        cfg = RBCDConfig(ff_stack_entries=2)
        rows = [[
            (0, 1, True), (1, 2, True), (2, 3, True),  # 3rd push dropped
            (3, 2, False), (4, 3, False), (5, 1, False),
        ]]
        assert_tile_matches_reference(rows, cfg)

    def test_back_matches_bottommost_unmatched(self):
        # Two fronts of id 1: the back must match the bottom one first,
        # pairing with everything above it.
        rows = [[
            (0, 1, True), (1, 2, True), (2, 1, True),
            (3, 1, False), (4, 1, False),
        ]]
        assert_tile_matches_reference(rows, CFG)

    def test_rows_of_unequal_length_lockstep(self):
        rows = [
            [(0, 1, True), (2, 2, True), (3, 1, False), (5, 2, False)],
            [(1, 3, True)],
            [(0, 4, False)],
            [],
            [(0, 1, True), (1, 1, False)],
        ]
        # Empty rows cannot occur in a real ZEB (only non-empty lists
        # are stored) but the lock-step loop must still tolerate the
        # padding pattern of short rows.
        assert_tile_matches_reference([r for r in rows if r], CFG)


class TestFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_single_list(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 30))
        z = np.sort(rng.integers(0, 50, size=n)).tolist()
        oid = rng.integers(0, 5, size=n).tolist()
        front = (rng.random(n) < 0.5).tolist()
        assert_tile_matches_reference([list(zip(z, oid, front))], CFG)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("t_max", [2, 4, 8])
    def test_random_tile_many_lists(self, seed, t_max):
        cfg = RBCDConfig(ff_stack_entries=t_max)
        rng = np.random.default_rng(1000 * t_max + seed)
        rows = []
        for _ in range(int(rng.integers(1, 12))):
            n = int(rng.integers(1, 20))
            z = np.sort(rng.integers(0, 40, size=n)).tolist()
            oid = rng.integers(0, 4, size=n).tolist()
            front = (rng.random(n) < 0.6).tolist()
            rows.append(list(zip(z, oid, front)))
        assert_tile_matches_reference(rows, cfg)

    @pytest.mark.parametrize("seed", range(4))
    def test_front_heavy_lists_overflow_consistently(self, seed):
        cfg = RBCDConfig(ff_stack_entries=3)
        rng = np.random.default_rng(77 + seed)
        rows = []
        for _ in range(6):
            n = int(rng.integers(5, 25))
            z = np.sort(rng.integers(0, 40, size=n)).tolist()
            oid = rng.integers(0, 3, size=n).tolist()
            front = (rng.random(n) < 0.85).tolist()  # mostly pushes
            rows.append(list(zip(z, oid, front)))
        assert_tile_matches_reference(rows, cfg)
        tile = tile_from_rows(rows)
        assert analyze_tile(tile, cfg).stack_overflows > 0
