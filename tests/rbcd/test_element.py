"""ZEB element packing tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.gpu.config import RBCDConfig
from repro.rbcd.element import (
    dequantize_depth,
    max_object_id,
    pack_element,
    quantize_depth,
    unpack_element,
)

CFG = RBCDConfig()


class TestQuantization:
    def test_endpoints(self):
        assert quantize_depth(0.0, CFG) == 0
        assert quantize_depth(1.0, CFG) == (1 << CFG.z_bits) - 1

    def test_clamps_out_of_range(self):
        assert quantize_depth(-0.5, CFG) == 0
        assert quantize_depth(1.5, CFG) == (1 << CFG.z_bits) - 1

    def test_monotone(self):
        zs = np.linspace(0, 1, 1000)
        codes = quantize_depth(zs, CFG)
        assert (np.diff(codes) >= 0).all()

    def test_array_input(self):
        codes = quantize_depth(np.array([0.0, 0.5, 1.0]), CFG)
        assert codes.shape == (3,)

    @given(st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    def test_roundtrip_error_bounded(self, z):
        code = quantize_depth(z, CFG)
        back = dequantize_depth(code, CFG)
        assert abs(float(back) - z) <= 0.5 / ((1 << CFG.z_bits) - 1) + 1e-12


class TestPacking:
    def test_roundtrip(self):
        word = pack_element(1234, 56, True, CFG)
        assert unpack_element(word, CFG) == (1234, 56, True)

    def test_word_fits_element_bits(self):
        word = pack_element((1 << CFG.z_bits) - 1, max_object_id(CFG), True, CFG)
        assert word < (1 << CFG.element_bits)

    def test_z_in_high_bits_preserves_depth_order(self):
        near = pack_element(10, max_object_id(CFG), True, CFG)
        far = pack_element(11, 0, False, CFG)
        assert near < far

    def test_out_of_range_z_rejected(self):
        with pytest.raises(ValueError):
            pack_element(1 << CFG.z_bits, 0, True, CFG)

    def test_out_of_range_id_rejected(self):
        with pytest.raises(ValueError):
            pack_element(0, max_object_id(CFG) + 1, True, CFG)

    def test_unpack_validates_width(self):
        with pytest.raises(ValueError):
            unpack_element(1 << CFG.element_bits, CFG)

    @given(
        st.integers(min_value=0, max_value=(1 << 18) - 1),
        st.integers(min_value=0, max_value=(1 << 13) - 1),
        st.booleans(),
    )
    def test_roundtrip_property(self, z, oid, front):
        assert unpack_element(pack_element(z, oid, front, CFG), CFG) == (z, oid, front)

    def test_id_width_suits_wvga_workloads(self):
        # 13 id bits give 8192 collisionable objects per frame.
        assert max_object_id(CFG) == 8191
