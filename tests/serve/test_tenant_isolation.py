"""Tenant isolation differential: served ≡ solo, bit for bit.

The serving contract under test: a tenant's stream served through a
:class:`~repro.serve.CollisionService` — batched against seven other
tenants on one shared executor pool, with per-tenant monitors, a
shared tracer and request-scoped context attached — produces results
bit-identical to running that tenant's stream alone on a private
:class:`~repro.core.RBCDSystem` with **no telemetry at all**.  One
comparison therefore proves both laws at once: multi-tenant batching
does not perturb results, and telemetry on ≡ telemetry off.
"""

import pytest

from repro.core import RBCDSystem
from repro.experiments.loadgen import plan_tenants
from repro.gpu.config import GPUConfig
from repro.observability.provenance import ProvenanceRecorder
from repro.observability.tracer import Tracer
from repro.serve import CollisionService

TENANTS = 8
FRAMES = 2


def config_for(workers: int) -> GPUConfig:
    config = GPUConfig().with_screen(96, 64)
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    return config


def result_fingerprint(result) -> tuple:
    """Everything observable about one RBCDFrameResult, hashable-ish.

    ``RBCDFrameResult`` is not the GPU-level ``FrameResult`` that
    ``tests.gpu.test_parallel.frame_fingerprint`` covers, so this
    builds the serving-level equivalent: exact pair set with full
    contact records, every stats counter, modelled energy, and the raw
    framebuffers.
    """
    report = result.report
    contacts = tuple(
        (
            pair.id_a,
            pair.id_b,
            tuple(points),
        )
        for pair, points in sorted(
            report.contacts.items(), key=lambda kv: (kv[0].id_a, kv[0].id_b)
        )
    )
    energy = (
        tuple(sorted(result.energy.registry().as_dict().items()))
        if result.energy is not None
        else None
    )
    return (
        contacts,
        report.pair_records_written,
        tuple(sorted(result.stats.registry().as_dict().items())),
        energy,
        result.cpu_fallback,
        result.color.tobytes(),
        result.z_buffer.tobytes(),
    )


def solo_fingerprints(plan, config):
    """The reference stream: private system, telemetry fully off."""
    with RBCDSystem(config=config) as system:
        return [
            result_fingerprint(system.detect_frame(plan.frame_at(seq, config)))
            for seq in range(FRAMES)
        ]


@pytest.mark.parametrize("workers", [1, 4])
def test_each_tenant_is_bit_identical_to_solo(workers):
    config = config_for(workers)
    plans = plan_tenants(TENANTS, detail=1, seed=7)
    assert len(plans) == TENANTS

    # Served: 8 tenants interleaved on one pool, full telemetry on.
    # admit_unhealthy keeps watchdog breaches (the "crazy" scene blows
    # the paper's activity envelope at this tiny resolution) from
    # rejecting lockstep frames — admission may only reject, and a
    # rejected frame would make the streams diverge by construction.
    served = {plan.tenant: [] for plan in plans}
    with CollisionService(
        workers=workers,
        executor_backend="thread" if workers != 1 else None,
        base_config=config,
        tracer=Tracer(),
        admit_unhealthy=True,
    ) as service:
        for plan in plans:
            service.register(plan.tenant)
        futures = []
        for seq in range(FRAMES):
            for plan in plans:
                futures.append(
                    (plan.tenant, service.submit(
                        plan.tenant, plan.frame_at(seq, config)
                    ))
                )
        assert service.drain() == TENANTS * FRAMES
        for tenant, future in futures:
            served[tenant].append(
                result_fingerprint(future.result(timeout=30).result)
            )

    # Solo baselines, one tenant at a time, telemetry off.
    for plan in plans:
        assert served[plan.tenant] == solo_fingerprints(plan, config), (
            f"tenant {plan.tenant} diverged from its solo run "
            f"(workers={workers})"
        )


def test_provenance_matches_solo_recorder():
    """Evidence records for a served tenant equal the solo recorder's."""
    config = config_for(1)
    plan = plan_tenants(TENANTS, detail=1, seed=7)[0]

    solo_recorder = ProvenanceRecorder()
    with RBCDSystem(config=config, provenance=solo_recorder) as system:
        for seq in range(FRAMES):
            system.detect_frame(plan.frame_at(seq, config))

    served_recorder = ProvenanceRecorder()
    plans = plan_tenants(TENANTS, detail=1, seed=7)
    with CollisionService(
        base_config=config, admit_unhealthy=True
    ) as service:
        for other in plans:
            service.register(
                other.tenant,
                provenance=(
                    served_recorder if other.tenant == plan.tenant else None
                ),
            )
        for seq in range(FRAMES):
            for other in plans:
                service.submit(other.tenant, other.frame_at(seq, config))
        service.drain()

    assert served_recorder.frames == solo_recorder.frames
    assert served_recorder.case_counts == solo_recorder.case_counts
    assert served_recorder.records == solo_recorder.records
