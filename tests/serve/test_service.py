"""CollisionService unit tests: admission, batching, demux, telemetry."""

import urllib.error
import urllib.request

import pytest

from repro.gpu.config import GPUConfig
from repro.observability.counters import CounterRegistry
from repro.observability.live import WatchdogRule
from repro.observability.openmetrics import (
    parse_openmetrics,
    validate_openmetrics,
)
from repro.observability.tracer import Tracer
from repro.scenes.benchmarks import workload_by_alias
from repro.serve import (
    AdmissionError,
    CollisionService,
    ServedFrame,
    ServiceMetricsServer,
)

CONFIG = GPUConfig().with_screen(96, 64)

# Watchdog rules that never fire: admission stays open, and serving
# tests exercise batching rather than rule thresholds.
QUIET_RULES = [
    WatchdogRule("never", "window.frames", "gt", 1e12, description="off")
]
# A rule in breach from the very first observed frame.
TRIP_RULES = [
    WatchdogRule("always", "window.frames", "ge", 1.0, description="trip")
]


def make_frames(count, scene="cap", phase=0):
    workload = workload_by_alias(scene, detail=1)
    dt = workload.duration_s / workload.default_frames
    return [
        workload.scene.frame_at(
            float(((seq + phase) * dt) % workload.duration_s), CONFIG
        )
        for seq in range(count)
    ]


def make_service(**kwargs):
    kwargs.setdefault("base_config", CONFIG)
    kwargs.setdefault("rules", QUIET_RULES)
    return CollisionService(**kwargs)


class TestRegistration:
    def test_register_and_deterministic_order(self):
        with make_service() as service:
            for tenant in ("zeta", "alpha", "mid"):
                service.register(tenant)
            assert service.tenants() == ["alpha", "mid", "zeta"]

    def test_rejects_duplicate_and_invalid_ids(self):
        with make_service() as service:
            service.register("alice")
            with pytest.raises(ValueError, match="already registered"):
                service.register("alice")
            for bad in ("", "has space", "slash/y", 'quo"te'):
                with pytest.raises(ValueError, match="tenant id"):
                    service.register(bad)

    def test_unknown_tenant_submission(self):
        with make_service() as service:
            with pytest.raises(KeyError):
                service.submit("ghost", object())


class TestBatchingAndDemux:
    def test_serves_interleaved_tenants(self):
        with make_service() as service:
            service.register("alice")
            service.register("bob")
            frames = make_frames(2)
            futures = {
                (tenant, seq): service.submit(tenant, frames[seq])
                for seq in range(2)
                for tenant in ("alice", "bob")
            }
            assert service.drain() == 4
            for (tenant, seq), future in futures.items():
                served = future.result(timeout=10)
                assert isinstance(served, ServedFrame)
                assert served.tenant == tenant
                assert served.frame_seq == seq
                assert served.result.report is not None
            # one frame per tenant per batch, in two batches
            assert service.batches == 2
            assert futures[("alice", 0)].result().batch == 1
            assert futures[("bob", 1)].result().batch == 2

    def test_step_returns_zero_when_idle(self):
        with make_service() as service:
            service.register("alice")
            assert service.step() == 0

    def test_served_results_match_solo_run(self):
        from repro.core import RBCDSystem

        frames = make_frames(2)
        with RBCDSystem(config=CONFIG) as solo:
            want = [solo.detect_frame(f).pairs for f in frames]
        with make_service() as service:
            service.register("alice")
            futures = [service.submit("alice", f) for f in frames]
            service.drain()
            got = [f.result().result.pairs for f in futures]
        assert got == want

    def test_close_fails_pending_futures(self):
        service = make_service()
        service.register("alice")
        future = service.submit("alice", make_frames(1)[0])
        service.close()
        with pytest.raises(AdmissionError, match="shutdown"):
            future.result(timeout=5)
        with pytest.raises(RuntimeError, match="closed"):
            service.submit("alice", make_frames(1)[0])


class TestAdmissionControl:
    def test_backlog_rejection(self):
        with make_service(max_pending=1) as service:
            service.register("alice")
            frames = make_frames(2)
            service.submit("alice", frames[0])
            with pytest.raises(AdmissionError) as excinfo:
                service.submit("alice", frames[1])
            assert excinfo.value.reason == "backlog"
            counters = service.session("alice").serve_counters
            assert counters["serve.frames_rejected"] == 1
            assert counters["serve.frames_submitted"] == 1

    def test_unhealthy_tenant_is_refused_until_recovery(self):
        with make_service(rules=TRIP_RULES) as service:
            service.register("alice")
            frames = make_frames(2)
            service.submit("alice", frames[0])
            assert service.drain() == 1     # first frame trips the rule
            assert not service.healthy("alice")
            with pytest.raises(AdmissionError) as excinfo:
                service.submit("alice", frames[1])
            assert excinfo.value.reason == "unhealthy"
            assert "always" in str(excinfo.value)

    def test_admit_unhealthy_override(self):
        with make_service(rules=TRIP_RULES, admit_unhealthy=True) as service:
            service.register("alice")
            frames = make_frames(2)
            service.submit("alice", frames[0])
            service.drain()
            future = service.submit("alice", frames[1])  # no rejection
            service.drain()
            assert future.result(timeout=10).frame_seq == 1

    def test_rejection_does_not_touch_other_tenants(self):
        with make_service(max_pending=1) as service:
            service.register("alice")
            service.register("bob")
            frames = make_frames(2)
            service.submit("alice", frames[0])
            with pytest.raises(AdmissionError):
                service.submit("alice", frames[1])
            future = service.submit("bob", frames[0])
            service.drain()
            assert future.result(timeout=10).tenant == "bob"


class TestTraceContext:
    def test_every_tile_span_is_tenant_attributable(self):
        tracer = Tracer()
        with make_service(tracer=tracer) as service:
            service.register("alice")
            service.register("bob")
            frames = make_frames(2)
            for seq in range(2):
                for tenant in ("alice", "bob"):
                    service.submit(tenant, frames[seq], stream="s1")
            service.drain()
        tile_spans = tracer.by_name("rbcd.tile")
        assert tile_spans, "expected per-tile spans from the served frames"
        for span in tracer.spans:
            assert span.attrs["tenant"] in ("alice", "bob")
            assert span.attrs["stream"] == "s1"
            assert span.attrs["frame_seq"] in (0, 1)
        # Both tenants contributed spans, distinctly labelled.
        assert {s.attrs["tenant"] for s in tile_spans} == {"alice", "bob"}

    def test_context_does_not_leak_after_serving(self):
        tracer = Tracer()
        with make_service(tracer=tracer) as service:
            service.register("alice")
            service.submit("alice", make_frames(1)[0])
            service.drain()
        with tracer.span("outside"):
            pass
        assert "tenant" not in tracer.by_name("outside")[0].attrs


class TestTelemetryMerge:
    def test_global_registry_is_exact_shard_sum(self):
        with make_service() as service:
            for tenant in ("alice", "bob", "carol"):
                service.register(tenant)
            frames = make_frames(2)
            for seq in range(2):
                for tenant in ("alice", "bob", "carol"):
                    service.submit(tenant, frames[seq])
            service.drain()
            shards = [
                service.tenant_registry(t) for t in service.tenants()
            ]
            merged = CounterRegistry.sum(shards)
            merged_rev = CounterRegistry.sum(list(reversed(shards)))
            global_registry = service.global_registry()
            assert merged == global_registry
            assert merged_rev == global_registry
            assert merged.as_dict() == global_registry.as_dict()
            assert global_registry["serve.frames_completed"] == 6
            assert global_registry["gpu.frames"] == 6

    def test_openmetrics_exposition_is_strictly_valid_and_labelled(self):
        with make_service() as service:
            service.register("alice")
            service.register("bob")
            frames = make_frames(1)
            service.submit("alice", frames[0])
            service.submit("bob", frames[0])
            service.drain()
            text = service.to_openmetrics()
        assert validate_openmetrics(text) > 0
        families = parse_openmetrics(text)
        frames_family = families["repro_tenant_frames"]["samples"]
        assert (
            "repro_tenant_frames_total", {"tenant": "alice"}, 1.0
        ) in frames_family
        assert (
            "repro_tenant_frames_total", {"tenant": "bob"}, 1.0
        ) in frames_family
        # registry counters are labelled per tenant
        gpu_frames = families["repro_gpu_frames"]["samples"]
        assert ("repro_gpu_frames_total", {"tenant": "alice"}, 1.0) in gpu_frames
        # the per-tenant p95 series the SLO watchdog reads is exposed
        window = families["repro_tenant_window"]["samples"]
        assert any(
            labels.get("metric") == "quantile.frame.wall_ms.p95"
            for _, labels, _ in window
        )

    def test_health_and_snapshot_documents(self):
        with make_service(rules=TRIP_RULES, admit_unhealthy=True) as service:
            service.register("alice")
            service.register("bob")
            service.submit("alice", make_frames(1)[0])
            service.drain()
            assert not service.healthy("alice")
            assert service.healthy("bob")
            assert not service.healthy()
            doc = service.health_dict()
            assert doc["status"] == "failing"
            assert doc["tenants"]["alice"]["status"] == "failing"
            assert doc["tenants"]["bob"]["status"] == "ok"
            assert service.health_dict("bob")["tenant"] == "bob"
            snapshot = service.snapshot_dict()
            assert snapshot["tenants"]["alice"]["snapshot"]["frames"] == 1
            assert snapshot["totals"]["serve.frames_completed"] == 1


def fetch(url):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


class TestServiceMetricsServer:
    def test_endpoints(self):
        with make_service() as service:
            service.register("alice")
            service.submit("alice", make_frames(1)[0])
            service.drain()
            with ServiceMetricsServer(service) as server:
                status, body = fetch(server.url + "/metrics")
                assert status == 200
                assert validate_openmetrics(body) > 0
                assert 'tenant="alice"' in body

                status, body = fetch(server.url + "/healthz")
                assert status == 200

                status, body = fetch(server.url + "/healthz/alice")
                assert status == 200
                assert '"tenant": "alice"' in body

                status, body = fetch(server.url + "/healthz/ghost")
                assert status == 404

                status, body = fetch(server.url + "/snapshot.json")
                assert status == 200
                assert '"batches": 1' in body

                status, body = fetch(server.url + "/nope")
                assert status == 404

    def test_unhealthy_tenant_flips_healthz_to_503(self):
        with make_service(rules=TRIP_RULES, admit_unhealthy=True) as service:
            service.register("alice")
            service.register("bob")
            service.submit("alice", make_frames(1)[0])
            service.drain()
            with ServiceMetricsServer(service) as server:
                assert fetch(server.url + "/healthz")[0] == 503
                assert fetch(server.url + "/healthz/alice")[0] == 503
                assert fetch(server.url + "/healthz/bob")[0] == 200
