"""Cross-module invariants on randomized scenes.

Property tests over generated box scenes: counters must be consistent
with each other, RBCD results must match ground-truth box overlap, and
the baseline/RBCD pipelines must agree on everything deferred culling
does not touch.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.primitives import make_box
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.commands import DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU

CFG = GPUConfig().with_screen(128, 128)
BOUNDARY_BAND = 0.08

positions = st.tuples(
    st.floats(min_value=-1.2, max_value=1.2, allow_nan=False),
    st.floats(min_value=-1.2, max_value=1.2, allow_nan=False),
    st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
)


def scene_frame(centers):
    box = make_box(Vec3(0.4, 0.4, 0.4))
    draws = tuple(
        DrawCommand(box, Mat4.translation(Vec3(*c)), object_id=i + 1)
        for i, c in enumerate(centers)
    )
    view = Mat4.look_at(Vec3(0, 0, 6), Vec3.zero(), Vec3.unit_y())
    proj = Mat4.perspective(math.radians(55), 1.0, 0.1, 60.0)
    return Frame(draws=draws, view=view, projection=proj)


def true_overlaps(centers):
    """Ground truth for axis-aligned equal boxes: per-axis distance."""
    sure_hits, sure_misses = set(), set()
    for i in range(len(centers)):
        for j in range(i + 1, len(centers)):
            gaps = [abs(centers[i][k] - centers[j][k]) for k in range(3)]
            if all(g < 0.8 - BOUNDARY_BAND for g in gaps):
                sure_hits.add((i + 1, j + 1))
            elif any(g > 0.8 + BOUNDARY_BAND for g in gaps):
                sure_misses.add((i + 1, j + 1))
    return sure_hits, sure_misses


class TestRandomBoxScenes:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(positions, min_size=2, max_size=5, unique=True))
    def test_rbcd_matches_box_ground_truth(self, centers):
        frame = scene_frame(centers)
        result = GPU(CFG, rbcd_enabled=True).render_frame(frame)
        found = {(p.id_a, p.id_b) for p in result.collisions.pairs}
        sure_hits, sure_misses = true_overlaps(centers)
        for pair in sure_hits:
            assert pair in found, f"missed {pair} at {centers}"
        for pair in sure_misses:
            assert pair not in found, f"false positive {pair} at {centers}"

    @settings(max_examples=15, deadline=None)
    @given(st.lists(positions, min_size=1, max_size=4, unique=True))
    def test_counter_consistency(self, centers):
        frame = scene_frame(centers)
        result = GPU(CFG, rbcd_enabled=True).render_frame(frame)
        stats = result.stats
        assert stats.early_z_passes <= stats.early_z_tests
        assert stats.fragments_shaded == stats.early_z_passes
        assert stats.fragments_tagged_culled <= stats.fragments_produced
        assert (
            stats.early_z_tests
            == stats.fragments_produced - stats.fragments_tagged_culled
        )
        assert stats.zeb_insertions == stats.rbcd_fragments_in
        assert stats.zeb_overflow_events <= stats.zeb_insertions
        assert stats.overlap_elements_read <= stats.zeb_insertions
        assert stats.tile_cache_loads == stats.prim_tile_pairs
        assert stats.prims_rasterized == stats.prim_tile_pairs
        assert stats.raster_pipeline_cycles >= stats.fragment_cycles
        assert stats.gpu_cycles == pytest.approx(
            stats.geometry_cycles + stats.raster_pipeline_cycles
        )

    @settings(max_examples=15, deadline=None)
    @given(st.lists(positions, min_size=1, max_size=4, unique=True))
    def test_baseline_and_rbcd_agree_on_shaded_output(self, centers):
        """Deferred culling must not change the rendered image: tagged
        fragments are filtered before early-Z."""
        frame = scene_frame(centers)
        base = GPU(CFG, rbcd_enabled=False).render_frame(frame)
        rbcd = GPU(CFG, rbcd_enabled=True).render_frame(frame)
        assert np.array_equal(base.z_buffer, rbcd.z_buffer)
        assert np.array_equal(base.color, rbcd.color)
        assert base.stats.fragments_shaded == rbcd.stats.fragments_shaded
        assert base.stats.early_z_passes == rbcd.stats.early_z_passes

    @settings(max_examples=10, deadline=None)
    @given(st.lists(positions, min_size=2, max_size=4, unique=True))
    def test_m16_finds_superset_of_m2(self, centers):
        """Longer ZEB lists can only reveal more overlaps."""
        frame = scene_frame(centers)
        small = GPU(
            CFG.with_rbcd(list_length=2, ff_stack_entries=8), rbcd_enabled=True
        ).render_frame(frame)
        large = GPU(
            CFG.with_rbcd(list_length=16, ff_stack_entries=16), rbcd_enabled=True
        ).render_frame(frame)
        assert small.collisions.pairs <= large.collisions.pairs
