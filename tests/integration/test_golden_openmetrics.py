"""Golden OpenMetrics exposition: byte-exact snapshot of the cap scene.

Renders three fixed frames of the ``cap`` workload at a small
resolution, feeds them to a :class:`LiveMonitor` with *scripted* wall
times (host clocks would break byte-exactness), and compares the full
``/metrics`` exposition against a committed fixture.  Any drift in the
counter set, the metric naming scheme, the window/quantile math, or
the renderer's formatting shows up here as a precise text diff.

Regenerate the fixture (after an *intentional* change) with:

    PYTHONPATH=src python tests/integration/test_golden_openmetrics.py
"""

import difflib
from pathlib import Path

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.observability.live import LiveMonitor
from repro.observability.openmetrics import parse_openmetrics, validate_openmetrics
from repro.scenes.benchmarks import workload_by_alias

FIXTURE = (
    Path(__file__).resolve().parent.parent
    / "fixtures" / "golden_openmetrics_cap.txt"
)
SCENE = "cap"
WIDTH, HEIGHT = 160, 96
DETAIL = 1
FRAMES = 3
# Scripted host latencies, one per frame: deterministic stand-ins for
# time.perf_counter() so the wall-time series is reproducible.
WALL_S = (0.004, 0.002, 0.008)


def render_exposition() -> str:
    config = GPUConfig().with_screen(WIDTH, HEIGHT)
    workload = workload_by_alias(SCENE, detail=DETAIL)
    monitor = LiveMonitor(window=8)
    gpu = GPU(config, rbcd_enabled=True)
    try:
        for t, wall_s in zip(workload.times(FRAMES), WALL_S):
            result = gpu.render_frame(workload.scene.frame_at(float(t), config))
            monitor.observe(result, wall_s=wall_s)
    finally:
        gpu.close()
    return monitor.to_openmetrics()


def test_golden_openmetrics_exposition():
    assert FIXTURE.exists(), (
        f"missing fixture {FIXTURE}; regenerate with "
        f"PYTHONPATH=src python {__file__}"
    )
    expected = FIXTURE.read_text()
    actual = render_exposition()
    if actual != expected:
        diff = "\n".join(difflib.unified_diff(
            expected.splitlines(), actual.splitlines(),
            fromfile="fixture", tofile="actual", lineterm="",
        ))
        raise AssertionError(f"OpenMetrics exposition drifted:\n{diff}")


def test_fixture_is_valid_openmetrics():
    """The committed fixture itself passes the strict validator."""
    text = FIXTURE.read_text()
    assert validate_openmetrics(text) > 0
    families = parse_openmetrics(text)
    assert families["repro_frames_observed"]["samples"][0][2] == float(FRAMES)
    # The paper's envelope holds on the quick cap scene: healthy stream.
    assert families["repro_health"]["samples"][0][2] == 1.0
    assert families["repro_watchdog_alerts"]["samples"][0][2] == 0.0


def test_fixture_round_trips_through_parser():
    """Render -> parse -> values agree with the monitor's own view."""
    families = parse_openmetrics(render_exposition())
    window = {
        labels["metric"]: value
        for _, labels, value in families["repro_window"]["samples"]
    }
    assert window["window.frames"] == float(FRAMES)
    assert 0.0 < window["window.rbcd.activity_ratio"] < 0.01
    summary = families["repro_frame_wall_seconds"]["samples"]
    by_suffix = {name: value for name, _, value in summary}
    assert by_suffix["repro_frame_wall_seconds_count"] == float(FRAMES)
    assert by_suffix["repro_frame_wall_seconds_sum"] == sum(WALL_S)


if __name__ == "__main__":
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE.write_text(render_exposition())
    print(f"wrote {FIXTURE}")
