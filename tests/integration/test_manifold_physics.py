"""Physics driven purely by RBCD contact manifolds (no EPA).

The complete hardware data path: the GPU reports colliding pairs with
pixel/depth coordinates, the CPU unprojects them into manifolds and
runs only the response arithmetic.  The simulation must still settle
plausibly.
"""

import pytest

from repro.core import RBCDSystem
from repro.geometry.primitives import make_box, make_icosphere
from repro.geometry.vec import Vec3
from repro.physics.dynamics import PhysicsWorld, RigidBody
from repro.scenes.camera import Camera

FRAMES = 180
DT = 1.0 / 60.0


def run_manifold_loop():
    world = PhysicsWorld()
    world.add_body(
        RigidBody(1, make_box(Vec3(4.0, 0.4, 4.0)), Vec3(0, 0, 0),
                  inverse_mass=0.0)
    )
    ball = world.add_body(
        RigidBody(2, make_icosphere(0.45, subdivisions=2), Vec3(0.0, 2.5, 0.0),
                  restitution=0.1)
    )
    system = RBCDSystem(resolution=(256, 160))
    # Top-down view: the ball-floor contact patch is a horizontal disc,
    # so the patch normal and the view-ray depth estimate both align
    # with the true separating direction (+y).  Image-based contacts
    # are view-dependent estimates; this is the well-posed view.
    camera = Camera(eye=Vec3(0.0, 10.0, 0.5), target=Vec3(0.0, 0.0, 0.0))
    for _ in range(FRAMES):
        objects = [
            (body.body_id, body.mesh, body.model_matrix())
            for body in world.bodies()
        ]
        result = system.detect(objects, camera, raster_only=True)
        manifolds = [result.manifold(a, b) for a, b in sorted(result.pairs)]
        world.step_with_manifolds(DT, manifolds)
    return world, ball


@pytest.fixture(scope="module")
def settled():
    return run_manifold_loop()


class TestManifoldDrivenPhysics:
    def test_ball_does_not_fall_through_floor(self, settled):
        _, ball = settled
        # Floor top at 0.4; the ball's centre must stay above it.
        assert ball.position.y > 0.4

    def test_ball_settles_near_rest_height(self, settled):
        _, ball = settled
        # Rest: floor top 0.4 + radius 0.45 = 0.85; the image-based
        # depth estimate is coarser than EPA, allow a wider band.
        assert ball.position.y == pytest.approx(0.85, abs=0.25)

    def test_ball_velocity_settles(self, settled):
        _, ball = settled
        assert abs(ball.velocity.y) < 1.0

    def test_ball_stays_centered(self, settled):
        _, ball = settled
        assert abs(ball.position.x) < 0.5
        assert abs(ball.position.z) < 0.5
