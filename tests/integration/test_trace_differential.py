"""Tracing is purely observational: enabling it changes nothing.

The acceptance bar for the observability layer — with a tracer attached
(vs the default ``NULL_TRACER``), every frame must produce identical
collision pairs, contact records, counters, and simulated cycles, at
any worker count.  Spans read the pipeline's numbers; they never feed
back into them.
"""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.hybrid import HybridCDSystem
from repro.observability.tracer import Tracer
from repro.scenes.benchmarks import workload_by_alias
from tests.conftest import sphere_pair_frame, two_boxes_frame
from tests.gpu.test_parallel import frame_fingerprint


def render_fingerprint(config: GPUConfig, frame, tracer=None):
    gpu = GPU(config, rbcd_enabled=True, tracer=tracer)
    try:
        return frame_fingerprint(gpu.render_frame(frame))
    finally:
        gpu.close()


@pytest.mark.parametrize("workers", [1, 4])
def test_tracing_changes_nothing(workers):
    config = GPUConfig().with_screen(160, 96)
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    for separation in (0.8, 1.4):
        frame = two_boxes_frame(config, separation)
        untraced = render_fingerprint(config, frame)
        traced = render_fingerprint(config, frame, tracer=Tracer())
        assert traced == untraced


@pytest.mark.parametrize("workers", [1, 4])
def test_tracing_changes_nothing_on_benchmark_scene(workers):
    config = GPUConfig().with_screen(160, 96)
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    workload = workload_by_alias("crazy", detail=1)
    frame = workload.scene.frame_at(1.0, config)
    untraced = render_fingerprint(config, frame)
    traced = render_fingerprint(config, frame, tracer=Tracer())
    assert traced == untraced


def test_traced_spans_report_the_untraced_cycles():
    # The tracer's numbers come *from* the pipeline: the frame span's
    # cycles equal the untraced run's gpu_cycles exactly.
    config = GPUConfig().with_screen(160, 96)
    frame = sphere_pair_frame(config, 0.7)
    untraced = render_fingerprint(config, frame)
    tracer = Tracer()
    traced = render_fingerprint(config, frame, tracer=tracer)
    assert traced == untraced
    (frame_span,) = tracer.by_name("frame")
    assert frame_span.cycles == untraced["gpu_cycles"]
    (geometry_span,) = tracer.by_name("geometry")
    assert geometry_span.cycles == untraced["stats"]["geometry_cycles"]
    (raster_span,) = tracer.by_name("raster")
    assert raster_span.cycles == untraced["stats"]["raster_pipeline_cycles"]


def test_hybrid_tracing_changes_nothing():
    workload = workload_by_alias("cap", detail=1)
    scene = workload.scene
    objects = [
        (scene.object_id(obj.name), obj.mesh, obj.animator.transform(1.0))
        for obj in scene.objects
        if obj.collisionable
    ]
    camera = workload.scene.camera_at(1.0)
    with HybridCDSystem(resolution=(160, 96)) as plain:
        baseline = plain.detect(objects, camera)
    tracer = Tracer()
    with HybridCDSystem(resolution=(160, 96), tracer=tracer) as traced_sys:
        traced = traced_sys.detect(objects, camera)
    assert traced.pairs == baseline.pairs
    assert traced.rbcd_pairs == baseline.rbcd_pairs
    assert traced.software_pairs == baseline.software_pairs
    assert traced.offscreen_ids == baseline.offscreen_ids
    assert tracer.by_name("hybrid.classify")
    assert tracer.by_name("hybrid.software")
