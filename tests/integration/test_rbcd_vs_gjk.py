"""Cross-validation: RBCD against the software narrow phase.

For convex objects both detectors answer the same geometric question,
so away from decision boundaries (grazing contacts thinner than a
pixel, tessellation differences) they must agree.  This is the central
end-to-end correctness check of the reproduction.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.primitives import make_box, make_concave_l, make_icosphere
from repro.geometry.vec import Mat4, Vec3
from repro.core import RBCDSystem
from repro.physics.world import CollisionWorld
from repro.scenes.camera import Camera

CAMERA = Camera(eye=Vec3(0.0, 0.0, 7.0), target=Vec3.zero(), far=100.0)
SYSTEM = RBCDSystem(resolution=(320, 320))
# Keep clear of sub-pixel grazing contacts and hull-tessellation skin.
BOUNDARY_BAND = 0.08


def both_detect(mesh_a, mesh_b, offset: Vec3):
    model_a = Mat4.identity()
    model_b = Mat4.translation(offset)
    rbcd = SYSTEM.detect([(1, mesh_a, model_a), (2, mesh_b, model_b)], CAMERA)
    world = CollisionWorld()
    world.add_object(1, mesh_a)
    world.add_object(2, mesh_b)
    world.set_transform(2, model_b)
    gjk = world.detect("broad+narrow")
    return (1, 2) in rbcd.pairs, (1, 2) in [tuple(p) for p in gjk.pairs]


class TestBoxes:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=2.2, allow_nan=False),
        st.floats(min_value=0.0, max_value=np.pi / 2, allow_nan=False),
    )
    def test_axis_aligned_boxes_agree(self, distance, angle_xy):
        if abs(distance - 1.0) < BOUNDARY_BAND:
            return
        offset = Vec3(
            distance * np.cos(angle_xy), distance * np.sin(angle_xy), 0.0
        )
        # Near the diagonal, the decision boundary moves; skip the band
        # around the true face-contact distances on each axis.
        if abs(offset.x - 1.0) < BOUNDARY_BAND and abs(offset.y) < 1.0 + BOUNDARY_BAND:
            pass
        box = make_box(Vec3(0.5, 0.5, 0.5))
        rbcd, gjk = both_detect(box, box, offset)
        overlap = max(abs(offset.x), abs(offset.y)) < 1.0 - BOUNDARY_BAND
        separated = max(abs(offset.x), abs(offset.y)) > 1.0 + BOUNDARY_BAND
        if overlap or separated:
            assert rbcd == gjk == overlap


class TestSpheres:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.3, max_value=2.4, allow_nan=False),
        st.floats(min_value=0.0, max_value=2 * np.pi, allow_nan=False),
        st.floats(min_value=-0.8, max_value=0.8, allow_nan=False),
    )
    def test_spheres_agree_with_analytic(self, distance, phi, zfrac):
        if abs(distance - 1.0) < BOUNDARY_BAND:
            return
        direction = np.array(
            [np.cos(phi), np.sin(phi), zfrac]
        )
        direction /= np.linalg.norm(direction)
        offset = Vec3.from_array(direction * distance)
        sphere = make_icosphere(0.5, subdivisions=3)
        rbcd, gjk = both_detect(sphere, sphere, offset)
        expected = distance < 1.0
        assert gjk == expected
        assert rbcd == expected


class TestConcaveAccuracy:
    """Figure 2: RBCD's discretized shape beats the hull-based GJK."""

    def test_object_in_notch_is_rbcd_true_negative(self):
        # A small box nestled in the L's concave notch: hull-level GJK
        # reports a (false) collision, RBCD does not.
        l_shape = make_concave_l(1.0, 0.4, 0.4)
        probe = make_box(Vec3(0.12, 0.12, 0.12))
        offset = Vec3(0.7, 0.7, 0.0)
        rbcd, gjk = both_detect(l_shape, probe, offset)
        assert gjk is True     # hull false positive
        assert rbcd is False   # pixel-accurate true negative

    def test_actual_notch_contact_found_by_both(self):
        l_shape = make_concave_l(1.0, 0.4, 0.4)
        probe = make_box(Vec3(0.12, 0.12, 0.12))
        offset = Vec3(0.3, 0.3, 0.0)  # overlaps the L's corner arm
        rbcd, gjk = both_detect(l_shape, probe, offset)
        assert rbcd is True
        assert gjk is True


class TestProjectionIndependence:
    """Section 3.5: detection is based on reconstructed 3-D positions,
    so the answer should not depend on the camera direction."""

    @pytest.mark.parametrize("eye", [
        Vec3(0, 0, 7), Vec3(7, 0, 0), Vec3(0, 7, 0.01),
        Vec3(4, 4, 4), Vec3(-5, 2, 5),
    ])
    def test_colliding_pair_from_any_direction(self, eye):
        camera = Camera(eye=eye, target=Vec3.zero(), far=100.0)
        box = make_box(Vec3(0.5, 0.5, 0.5))
        result = SYSTEM.detect(
            [
                (1, box, Mat4.identity()),
                (2, box, Mat4.translation(Vec3(0.6, 0.0, 0.0))),
            ],
            camera,
        )
        assert (1, 2) in result.pairs

    @pytest.mark.parametrize("eye", [
        Vec3(0, 0, 7), Vec3(7, 0, 0), Vec3(4, 4, 4),
    ])
    def test_depth_separated_pair_not_reported(self, eye):
        """Two objects overlapping in *screen space* but separated in
        depth must not collide from any viewpoint."""
        camera = Camera(eye=eye, target=Vec3.zero(), far=100.0)
        box = make_box(Vec3(0.5, 0.5, 0.5))
        result = SYSTEM.detect(
            [
                (1, box, Mat4.identity()),
                (2, box, Mat4.translation(Vec3(0.0, 0.0, 2.5))),
            ],
            camera,
        )
        assert (1, 2) not in result.pairs
