"""Tile profiling is purely observational: attaching it changes nothing.

The acceptance bar for the schema-v6 spatial layer, mirroring the
tracer/provenance/live-monitor differential tests: with a
:class:`TileProfiler` attached, every frame must produce bit-identical
collision pairs, contact records, counters, and simulated cycles, at
any worker count — across all four benchmark scenes — and the
profiler's own grids must be bit-identical between workers 1 and 4
(they are simulated-hardware sums, so there is no wall-clock exclusion
at all).
"""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.observability.tileprofile import GRID_NAMES, TileProfiler
from repro.observability.tracer import Tracer
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias
from tests.conftest import two_boxes_frame
from tests.gpu.test_parallel import frame_fingerprint


def render_fingerprint(config: GPUConfig, frames, profiler=None):
    gpu = GPU(config, rbcd_enabled=True, tile_profiler=profiler)
    try:
        return [frame_fingerprint(gpu.render_frame(f)) for f in frames]
    finally:
        gpu.close()


def config_for(workers: int) -> GPUConfig:
    config = GPUConfig().with_screen(160, 96)
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    return config


def benchmark_frames(config: GPUConfig, alias="cap", count=2):
    workload = workload_by_alias(alias, detail=1)
    return [
        workload.scene.frame_at(float(t), config)
        for t in workload.times(count)
    ]


@pytest.mark.parametrize("workers", [1, 4])
def test_profiling_changes_nothing(workers):
    config = config_for(workers)
    for separation in (0.8, 1.4):
        frames = [two_boxes_frame(config, separation)]
        unprofiled = render_fingerprint(config, frames)
        profiled = render_fingerprint(
            config, frames, profiler=TileProfiler()
        )
        assert profiled == unprofiled


@pytest.mark.parametrize("alias", list(BENCHMARKS))
@pytest.mark.parametrize("workers", [1, 4])
def test_profiling_changes_nothing_on_benchmark_scenes(alias, workers):
    """TileProfiler on/off x workers 1/4 is bit-identical on all four
    quick scenes — the ISSUE's differential acceptance matrix."""
    config = config_for(workers)
    frames = benchmark_frames(config, alias=alias)
    unprofiled = render_fingerprint(config, frames)
    profiled = render_fingerprint(config, frames, profiler=TileProfiler())
    assert profiled == unprofiled


def test_grids_bit_identical_across_worker_counts():
    """Workers 1 and 4 accumulate the exact same grids: per-tile sums
    absorbed in tile-schedule order carry no scheduling noise."""
    profilers = {}
    for workers in (1, 4):
        config = config_for(workers)
        profiler = TileProfiler()
        render_fingerprint(
            config, benchmark_frames(config), profiler=profiler
        )
        profilers[workers] = profiler
    one, four = profilers[1], profilers[4]
    assert one.frames == four.frames == 2
    assert (one.tiles_x, one.tiles_y) == (four.tiles_x, four.tiles_y)
    for name in GRID_NAMES:
        assert one.grid(name) == four.grid(name), name


def test_grids_deterministic_across_repeat_runs():
    grids = []
    for _ in range(2):
        config = config_for(1)
        profiler = TileProfiler()
        render_fingerprint(
            config, benchmark_frames(config), profiler=profiler
        )
        grids.append(profiler.as_dict())
    assert grids[0] == grids[1]


def test_tile_cycles_sum_to_rbcd_stage_cycles():
    """The cycles grid is an exact spatial decomposition: summed over
    tiles it reproduces the traced rbcd.tile span cycles."""
    config = config_for(1)
    profiler = TileProfiler()
    tracer = Tracer()
    gpu = GPU(config, rbcd_enabled=True, tracer=tracer,
              tile_profiler=profiler)
    try:
        for frame in benchmark_frames(config):
            gpu.render_frame(frame)
    finally:
        gpu.close()
    traced = sum(span.cycles for span in tracer.by_name("rbcd.tile"))
    assert sum(profiler.grid("cycles")) == pytest.approx(traced)


def test_tile_energy_sums_to_dynamic_rbcd_energy():
    """The energy grid reproduces the dynamic (non-static) RBCD joules:
    static leakage accrues with time, not per tile, and is excluded."""
    config = config_for(1)
    profiler = TileProfiler()
    gpu = GPU(config, rbcd_enabled=True, tile_profiler=profiler)
    try:
        dynamic = 0.0
        for frame in benchmark_frames(config):
            result = gpu.render_frame(frame)
            rbcd = result.energy.rbcd
            dynamic += rbcd.insertion_j + rbcd.overlap_j + rbcd.output_j
    finally:
        gpu.close()
    assert sum(profiler.grid("energy_j")) == pytest.approx(dynamic)
