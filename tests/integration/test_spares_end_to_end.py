"""Section 5.3 extensions through the full pipeline.

The spare-entry pool and the CPU fallback are unit-tested at the ZEB
level; these tests drive them through ``GPU.render_frame`` on a real
workload so the extensions are known to compose with everything else.
"""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import make_temple

BASE = GPUConfig().with_screen(200, 120)


@pytest.fixture(scope="module")
def temple_frame():
    workload = make_temple(detail=1)
    return workload.scene.frame_at(workload.duration_s / 2.0, BASE)


class TestSparePoolEndToEnd:
    def test_spares_absorb_overflow(self, temple_frame):
        tight = BASE.with_rbcd(list_length=4)
        spared = BASE.with_rbcd(list_length=4, spare_entries_per_tile=64)
        plain = GPU(tight, rbcd_enabled=True).render_frame(temple_frame)
        pooled = GPU(spared, rbcd_enabled=True).render_frame(temple_frame)
        assert plain.stats.zeb_overflow_events > 0  # the stressor works
        assert pooled.stats.zeb_spare_allocations > 0
        assert pooled.stats.zeb_overflow_events < plain.stats.zeb_overflow_events

    def test_spares_never_lose_pairs(self, temple_frame):
        tight = BASE.with_rbcd(list_length=4)
        spared = BASE.with_rbcd(list_length=4, spare_entries_per_tile=64)
        plain = GPU(tight, rbcd_enabled=True).render_frame(temple_frame)
        pooled = GPU(spared, rbcd_enabled=True).render_frame(temple_frame)
        assert set(plain.collisions.as_sorted_pairs()) <= set(
            pooled.collisions.as_sorted_pairs()
        )

    def test_spares_unused_when_lists_suffice(self, temple_frame):
        roomy = BASE.with_rbcd(list_length=16, ff_stack_entries=16,
                               spare_entries_per_tile=64)
        result = GPU(roomy, rbcd_enabled=True).render_frame(temple_frame)
        assert result.stats.zeb_spare_allocations == 0


class TestFallbackEndToEnd:
    def test_fallback_flag_counted_in_stats(self, temple_frame):
        config = BASE.with_rbcd(list_length=4, cpu_fallback_overflow_rate=0.001)
        result = GPU(config, rbcd_enabled=True).render_frame(temple_frame)
        assert result.cpu_fallback
        assert result.stats.cpu_fallback_frames == 1

    def test_fallback_keeps_partial_report(self, temple_frame):
        """The flagged frame still carries what the unit did find — the
        CPU can use it or redo the frame, its choice."""
        config = BASE.with_rbcd(list_length=4, cpu_fallback_overflow_rate=0.001)
        result = GPU(config, rbcd_enabled=True).render_frame(temple_frame)
        assert result.collisions is not None
