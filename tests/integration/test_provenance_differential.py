"""Provenance recording is purely observational: enabling it changes nothing.

The acceptance bar for the provenance layer — with a
:class:`ProvenanceRecorder` attached (vs the default ``None``), every
frame must produce identical collision pairs, contact records, counters,
energy reports, and simulated cycles, at any worker count.  Evidence
fields are computed unconditionally inside the overlap kernels; the
recorder merely collects them at absorb time, so it can never feed back
into detection.
"""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.observability.provenance import ProvenanceRecorder
from repro.scenes.benchmarks import workload_by_alias
from tests.conftest import sphere_pair_frame, two_boxes_frame
from tests.gpu.test_parallel import frame_fingerprint


def render_fingerprint(config: GPUConfig, frame, provenance=None):
    gpu = GPU(config, rbcd_enabled=True, provenance=provenance)
    try:
        result = gpu.render_frame(frame)
        fingerprint = frame_fingerprint(result)
        if result.energy is not None:
            fingerprint["energy"] = result.energy.as_dict()
        return fingerprint
    finally:
        gpu.close()


@pytest.mark.parametrize("workers", [1, 4])
def test_recording_changes_nothing(workers):
    config = GPUConfig().with_screen(160, 96)
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    for separation in (0.8, 1.4):
        frame = two_boxes_frame(config, separation)
        unrecorded = render_fingerprint(config, frame)
        recorded = render_fingerprint(config, frame, ProvenanceRecorder())
        assert recorded == unrecorded


@pytest.mark.parametrize("workers", [1, 4])
def test_recording_changes_nothing_on_benchmark_scene(workers):
    config = GPUConfig().with_screen(160, 96)
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    workload = workload_by_alias("cap", detail=1)
    frame = workload.scene.frame_at(1.0, config)
    unrecorded = render_fingerprint(config, frame)
    recorded = render_fingerprint(config, frame, ProvenanceRecorder())
    assert recorded == unrecorded


def test_worker_count_does_not_change_the_evidence():
    """Workers 1 ≡ 4 bit-identical: records, case counts, counters."""
    base = GPUConfig().with_screen(160, 96)
    workload = workload_by_alias("cap", detail=1)
    frame = workload.scene.frame_at(1.0, base)
    recorders = {}
    for workers in (1, 4):
        config = base
        if workers != 1:
            config = config.with_executor(workers=workers, backend="thread")
        recorder = ProvenanceRecorder()
        render_fingerprint(config, frame, recorder)
        recorders[workers] = recorder
    serial, parallel = recorders[1], recorders[4]
    assert parallel.records == serial.records
    assert parallel.case_counts == serial.case_counts
    assert parallel.self_pairs_filtered == serial.self_pairs_filtered
    assert parallel.registry().as_dict() == serial.registry().as_dict()


def test_evidence_matches_the_collision_report():
    """Every emitted pair carries evidence: records correspond 1:1 to
    the report's contact records, and the evidence pair set equals the
    reported pair set."""
    config = GPUConfig().with_screen(160, 96)
    frame = sphere_pair_frame(config, 0.7)
    recorder = ProvenanceRecorder()
    gpu = GPU(config, rbcd_enabled=True, provenance=recorder)
    try:
        result = gpu.render_frame(frame)
    finally:
        gpu.close()
    report = result.collisions
    assert report.as_sorted_pairs()  # the scene does collide
    assert recorder.pairs_recorded == report.pair_records_written
    assert sorted({ev.pair for ev in recorder.records}) == (
        report.as_sorted_pairs()
    )
    assert recorder.frames == 1


def test_recorder_counters_stay_out_of_the_unit_registry():
    """The recorder's counters live in their own registry; enabling it
    must not add (or change) names in the frame's GPU registry."""
    config = GPUConfig().with_screen(160, 96)
    frame = two_boxes_frame(config, 0.8)
    gpu = GPU(config, rbcd_enabled=True, provenance=ProvenanceRecorder())
    try:
        result = gpu.render_frame(frame)
    finally:
        gpu.close()
    names = set(result.stats.registry().as_dict())
    assert not any(n.startswith("rbcd.case.") for n in names)
    assert not any(n.startswith("rbcd.evidence.") for n in names)
