"""Live monitoring is purely observational: attaching it changes nothing.

The acceptance bar for the telemetry layer, mirroring the tracer and
provenance differential tests: with a :class:`LiveMonitor` attached,
every frame must produce bit-identical collision pairs, contact
records, counters, and simulated cycles, at any worker count — and the
monitor's own deterministic snapshot stream must be bit-identical
between workers 1 and 4 (wall-clock fields excluded: they measure the
host, not the model).
"""

import pytest

from repro.gpu import kernels
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.hybrid import HybridCDSystem
from repro.observability.live import LiveMonitor
from repro.scenes.benchmarks import workload_by_alias
from tests.conftest import two_boxes_frame
from tests.gpu.test_parallel import frame_fingerprint


def render_fingerprint(config: GPUConfig, frames, monitor=None):
    gpu = GPU(config, rbcd_enabled=True, monitor=monitor)
    try:
        return [frame_fingerprint(gpu.render_frame(f)) for f in frames]
    finally:
        gpu.close()


def config_for(workers: int) -> GPUConfig:
    config = GPUConfig().with_screen(160, 96)
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    return config


def benchmark_frames(config: GPUConfig, alias="cap", count=3):
    workload = workload_by_alias(alias, detail=1)
    return [
        workload.scene.frame_at(float(t), config)
        for t in workload.times(count)
    ]


@pytest.mark.parametrize("workers", [1, 4])
def test_monitoring_changes_nothing(workers):
    config = config_for(workers)
    for separation in (0.8, 1.4):
        frames = [two_boxes_frame(config, separation)]
        unmonitored = render_fingerprint(config, frames)
        monitored = render_fingerprint(
            config, frames, monitor=LiveMonitor(window=8)
        )
        assert monitored == unmonitored


@pytest.mark.parametrize("workers", [1, 4])
def test_monitoring_changes_nothing_on_benchmark_stream(workers):
    config = config_for(workers)
    frames = benchmark_frames(config)
    unmonitored = render_fingerprint(config, frames)
    monitored = render_fingerprint(
        config, frames, monitor=LiveMonitor(window=8)
    )
    assert monitored == unmonitored


def test_snapshots_bit_identical_across_worker_counts():
    """Workers 1 and 4 feed the monitor the exact same snapshot stream."""
    streams = {}
    for workers in (1, 4):
        config = config_for(workers)
        monitor = LiveMonitor(window=8)
        render_fingerprint(config, benchmark_frames(config), monitor=monitor)
        streams[workers] = monitor
    one, four = streams[1], streams[4]
    assert one.frames == four.frames == 3
    assert (
        one.latest.deterministic_fingerprint()
        == four.latest.deterministic_fingerprint()
    )
    assert one.totals() == four.totals()
    # Window aggregates match except the host-time series.
    values_one = one.window_values()
    values_four = four.window_values()
    deterministic_keys = {
        k for k in values_one
        if "wall" not in k and not k.startswith("ewma.frame.wall")
    }
    assert deterministic_keys == {
        k for k in values_four
        if "wall" not in k and not k.startswith("ewma.frame.wall")
    }
    for key in deterministic_keys:
        assert values_one[key] == values_four[key], key
    assert one.active_alerts == four.active_alerts
    assert [a.as_dict() for a in one.alerts] == [
        a.as_dict() for a in four.alerts
    ]


def test_monitoring_is_deterministic_across_repeat_runs():
    """Two identical monitored runs produce identical snapshot streams."""
    fingerprints = []
    for _ in range(2):
        config = config_for(1)
        monitor = LiveMonitor(window=8)
        render_fingerprint(config, benchmark_frames(config), monitor=monitor)
        fingerprints.append(monitor.latest.deterministic_fingerprint())
    assert fingerprints[0] == fingerprints[1]


@pytest.mark.parametrize("backend", list(kernels.available_backends()))
@pytest.mark.parametrize("workers", [1, 4])
def test_kernel_backend_matrix_on_live_benchmark_stream(backend, workers):
    """Kernel backends are interchangeable on the monitored live path.

    The full matrix — reference/vectorized (plus numba when installed)
    crossed with serial and parallel execution — must reproduce the
    reference backend's frame fingerprints bit for bit, monitor
    attached.
    """
    reference_config = config_for(1).with_kernel_backend("reference")
    frames = benchmark_frames(reference_config)
    want = render_fingerprint(
        reference_config, frames, monitor=LiveMonitor(window=8)
    )
    config = config_for(workers).with_kernel_backend(backend)
    got = render_fingerprint(config, frames, monitor=LiveMonitor(window=8))
    assert got == want


def test_hybrid_monitoring_changes_nothing():
    workload = workload_by_alias("cap", detail=1)
    scene = workload.scene
    objects = [
        (scene.object_id(obj.name), obj.mesh, obj.animator.transform(1.0))
        for obj in scene.objects
        if obj.collisionable
    ]
    camera = workload.scene.camera_at(1.0)
    with HybridCDSystem(resolution=(160, 96)) as plain:
        baseline = plain.detect(objects, camera)
    monitor = LiveMonitor(window=8)
    with HybridCDSystem(resolution=(160, 96), monitor=monitor) as monitored:
        observed = monitored.detect(objects, camera)
    assert observed.pairs == baseline.pairs
    assert observed.rbcd_pairs == baseline.rbcd_pairs
    assert observed.software_pairs == baseline.software_pairs
    assert monitor.frames == 1  # the RBCD pass fed the monitor
