"""Golden tile-cache regression: committed hit/miss maps of two scenes.

Renders a fixed two-frame sequence of ``cap`` and ``temple`` with the
cross-frame tile cache enabled and compares the per-frame hit/miss tile
maps, replayed-tile counts, and the ``gpu.tilecache.*`` counters
against committed JSON fixtures — byte-exact.  Any change to the
signature key layout, the binning order, the config token, or the
replay bookkeeping shows up here as a precise map diff instead of a
silent hit-rate drift.

Regenerate the fixtures (after an *intentional* change) with:

    PYTHONPATH=src python tests/integration/test_golden_tilecache.py
"""

import json
from pathlib import Path

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.observability.tracer import Tracer
from repro.scenes.benchmarks import workload_by_alias

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures"
SCENES = ("cap", "temple")
WIDTH, HEIGHT = 160, 96
DETAIL = 1
FRAME_TIMES = (0.0, 1.0)  # cold frame, then the mid-run animation frame


def fixture_path(alias: str) -> Path:
    return FIXTURE_DIR / f"golden_tilecache_{alias}.json"


def snapshot_scene(alias: str) -> dict:
    """Render the two-frame sequence cache-on and snapshot the cache."""
    config = GPUConfig().with_screen(WIDTH, HEIGHT).with_tile_cache(True)
    workload = workload_by_alias(alias, detail=DETAIL)

    frames = []
    tracer = Tracer()
    with GPU(config, rbcd_enabled=True, tracer=tracer) as gpu:
        cache = gpu.tile_cache
        assert cache is not None
        for t in FRAME_TIMES:
            tracer.reset()
            frame = workload.scene.frame_at(float(t), config)
            result = gpu.render_frame(frame)
            counters = result.tilecache.as_dict()
            # The replayed-tile count the RBCD unit tallied at absorb
            # time, surfaced through the rbcd span annotation.
            (rbcd_span,) = tracer.by_name("rbcd")
            frames.append({
                "time": t,
                "hit_tiles": sorted(cache.frame_hit_tiles),
                "miss_tiles": sorted(cache.frame_miss_tiles),
                "tiles_replayed": rbcd_span.attrs["tiles_replayed"],
                "counters": {
                    name: counters[name]
                    for name in sorted(counters)
                },
                "pairs": [list(p) for p in result.collisions.as_sorted_pairs()],
            })
        entries = cache.entries

    return {
        "scene": alias,
        "width": WIDTH,
        "height": HEIGHT,
        "detail": DETAIL,
        "frame_times": list(FRAME_TIMES),
        "frames": frames,
        "entries": entries,
    }


@pytest.mark.parametrize("alias", SCENES)
def test_golden_tilecache(alias):
    path = fixture_path(alias)
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        f"PYTHONPATH=src python {__file__}"
    )
    expected = json.loads(path.read_text())
    actual = json.loads(json.dumps(snapshot_scene(alias)))  # JSON-canonical

    for i, (want, got) in enumerate(zip(expected["frames"], actual["frames"])):
        assert got["hit_tiles"] == want["hit_tiles"], (
            f"frame {i}: hit map drifted"
        )
        assert got["miss_tiles"] == want["miss_tiles"], (
            f"frame {i}: miss map drifted"
        )
        assert got == want, f"frame {i}: cache snapshot drifted"
    assert actual == expected


@pytest.mark.parametrize("alias", SCENES)
def test_fixture_has_nonzero_hits(alias):
    """The committed sequences must actually exercise replay: the
    second frame of each scene has cross-frame hits (both scenes keep
    static collisionable props in view)."""
    fixture = json.loads(fixture_path(alias).read_text())
    second = fixture["frames"][1]
    assert second["counters"]["gpu.tilecache.hits"] > 0
    assert second["tiles_replayed"] == len(second["hit_tiles"])
    first = fixture["frames"][0]
    assert first["counters"]["gpu.tilecache.hits"] == 0  # cold start


@pytest.mark.parametrize("alias", SCENES)
def test_fixture_metadata_matches_test_config(alias):
    """Guard against editing the test constants without regenerating."""
    fixture = json.loads(fixture_path(alias).read_text())
    assert fixture["scene"] == alias
    assert (fixture["width"], fixture["height"]) == (WIDTH, HEIGHT)
    assert fixture["detail"] == DETAIL
    assert fixture["frame_times"] == list(FRAME_TIMES)


if __name__ == "__main__":
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scene_alias in SCENES:
        out = fixture_path(scene_alias)
        out.write_text(
            json.dumps(snapshot_scene(scene_alias), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {out}")
