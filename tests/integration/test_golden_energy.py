"""Golden energy regression: modelled joules of two fixed frames.

Renders one fixed frame of the ``cap`` and ``temple`` workloads (same
frame as the golden-counter snapshots) and compares the full energy
report — per-component GPU and RBCD joules, simulated delay, EDP —
against committed JSON fixtures.  The energy model is a pure function
of deterministic counters, so any drift here means either the pricing
constants or the counters themselves changed.

Regenerate the fixtures (after an *intentional* change) with:

    PYTHONPATH=src python tests/integration/test_golden_energy.py
"""

import json
from pathlib import Path

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import workload_by_alias

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures"
SCENES = ("cap", "temple")
WIDTH, HEIGHT = 160, 96
DETAIL = 1
FRAME_TIME = 1.0  # mid-run: objects are interacting in both scenes

# Energies are priced from integer counters by float multiplies: exact
# down to the last bit on one machine, but allow libm-level slack so
# the fixtures survive platform differences in erf/pow-free paths.
REL_TOL = 1e-12


def fixture_path(alias: str) -> Path:
    return FIXTURE_DIR / f"golden_energy_{alias}.json"


def snapshot_scene(alias: str) -> dict:
    """Render the golden frame and collect the full energy report."""
    config = GPUConfig().with_screen(WIDTH, HEIGHT)
    workload = workload_by_alias(alias, detail=DETAIL)
    frame = workload.scene.frame_at(FRAME_TIME, config)

    gpu = GPU(config, rbcd_enabled=True)
    result = gpu.render_frame(frame)
    assert result.energy is not None

    return {
        "scene": alias,
        "width": WIDTH,
        "height": HEIGHT,
        "detail": DETAIL,
        "frame_time": FRAME_TIME,
        "energy": result.energy.as_dict(),
        "counters": {
            name: value
            for name, value in result.energy.registry().as_dict().items()
        },
    }


def assert_close_tree(actual, expected, path=""):
    if isinstance(expected, dict):
        assert isinstance(actual, dict) and actual.keys() == expected.keys(), (
            f"{path or 'root'}: keys drifted"
        )
        for key in expected:
            assert_close_tree(actual[key], expected[key], f"{path}{key}.")
    else:
        assert actual == pytest.approx(expected, rel=REL_TOL), (
            f"{path.rstrip('.')}: {expected} -> {actual}"
        )


@pytest.mark.parametrize("alias", SCENES)
def test_golden_energy(alias):
    path = fixture_path(alias)
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        f"PYTHONPATH=src python {__file__}"
    )
    expected = json.loads(path.read_text())
    actual = snapshot_scene(alias)
    assert_close_tree(actual["energy"], expected["energy"])
    assert_close_tree(actual["counters"], expected["counters"])


@pytest.mark.parametrize("alias", SCENES)
def test_energy_internally_consistent(alias):
    """The snapshot's roll-ups must agree with its own components."""
    snap = snapshot_scene(alias)["energy"]
    assert snap["total_j"] == pytest.approx(
        snap["gpu"]["total_j"] + snap["rbcd"]["total_j"], rel=1e-12
    )
    assert snap["edp_js"] == pytest.approx(
        snap["total_j"] * snap["delay_s"], rel=1e-12
    )
    # Fragment processing dominates GPU energy (paper Section 3.3) and
    # the RBCD unit is a small fraction of the whole — the headline
    # ultra-low-power claim in miniature.
    assert snap["gpu"]["fragment_j"] > snap["gpu"]["geometry_j"]
    assert snap["rbcd"]["total_j"] < 0.1 * snap["gpu"]["total_j"]


@pytest.mark.parametrize("alias", SCENES)
def test_fixture_metadata_matches_test_config(alias):
    """Guard against editing the test constants without regenerating."""
    path = fixture_path(alias)
    assert path.exists()
    fixture = json.loads(path.read_text())
    assert fixture["scene"] == alias
    assert (fixture["width"], fixture["height"]) == (WIDTH, HEIGHT)
    assert fixture["detail"] == DETAIL
    assert fixture["frame_time"] == FRAME_TIME


if __name__ == "__main__":
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scene_alias in SCENES:
        out = fixture_path(scene_alias)
        out.write_text(
            json.dumps(snapshot_scene(scene_alias), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {out}")
