"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "game_loop", "accuracy_comparison"} <= names
    assert len(EXAMPLES) >= 3
