"""The flight recorder is purely observational: attaching it changes nothing.

The acceptance bar for the black box, mirroring the tracer, provenance
and live-monitor differentials: with a :class:`FlightRecorder` attached
(its bounded tracer, a subscribed :class:`LiveMonitor`, and log capture
all live), every frame must produce bit-identical collision pairs,
contact records, counters and simulated cycles, at workers 1 and 4, on
all four benchmark scenes — and the recorder's ring contents themselves
must be deterministic modulo the wall-clock fields in
:data:`WALL_FIELDS`.
"""

import pytest

from repro.core import RBCDSystem
from repro.gpu.config import GPUConfig
from repro.observability.flightrecorder import (
    WALL_FIELDS,
    FlightRecorder,
    deterministic_events,
)
from repro.observability.live import LiveMonitor
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias


def config_for(workers: int) -> GPUConfig:
    config = GPUConfig().with_screen(160, 96)
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    return config


def benchmark_frames(config: GPUConfig, alias: str, count: int = 3):
    workload = workload_by_alias(alias, detail=1)
    return [
        workload.scene.frame_at(float(t), config)
        for t in workload.times(count)
    ]


def result_fingerprint(result) -> dict:
    report = result.report
    return {
        "pairs": report.as_sorted_pairs(),
        "contacts": {
            (p.id_a, p.id_b): [(c.x, c.y, c.z_front, c.z_back) for c in pts]
            for p, pts in report.contacts.items()
        },
        "pair_records_written": report.pair_records_written,
        "stats": result.stats.as_dict(),
        "energy_total_j": (
            result.energy.total_j if result.energy is not None else None
        ),
    }


def run_stream(config, frames, recorder=None, monitor=None):
    with RBCDSystem(
        config=config, monitor=monitor, recorder=recorder
    ) as system:
        return [result_fingerprint(system.detect_frame(f)) for f in frames]


def run_recorded(config, frames, tmp_path):
    recorder = FlightRecorder(dump_dir=tmp_path)
    try:
        fingerprints = run_stream(
            config, frames,
            recorder=recorder, monitor=LiveMonitor(window=8),
        )
    finally:
        recorder.close()
    return fingerprints, recorder


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("alias", BENCHMARKS)
def test_recorder_changes_nothing(alias, workers, tmp_path):
    """Recorder-on == recorder-off, bit for bit, per scene and worker
    count — the full stack: bounded tracer, monitor feed, log capture."""
    config = config_for(workers)
    frames = benchmark_frames(config, alias)
    plain = run_stream(config, frames)
    recorded, recorder = run_recorded(config, frames, tmp_path)
    assert recorded == plain
    # The recorder actually saw the stream it did not perturb.
    stats = recorder.stats()
    assert stats["streams"]["default"]["snapshots"] == len(frames)
    assert stats["streams"]["default"]["spans"] > 0


def _comparable(records):
    """Ring contents minus wall clock and the global interleave counter
    (log volume may differ across configs; span/snapshot payloads must
    not)."""
    return [
        {k: v for k, v in record.items() if k != "seq"}
        for record in deterministic_events(records)
    ]


def test_ring_contents_deterministic_across_worker_counts(tmp_path):
    """Workers 1 and 4 record identical span and snapshot payloads."""
    docs = {}
    for workers in (1, 4):
        config = config_for(workers)
        frames = benchmark_frames(config, "cap")
        _, recorder = run_recorded(config, frames, tmp_path / str(workers))
        docs[workers] = recorder.document()
    one = docs[1]["streams"]["default"]
    four = docs[4]["streams"]["default"]
    assert _comparable(one["spans"]) == _comparable(four["spans"])
    assert _comparable(one["snapshots"]) == _comparable(four["snapshots"])
    assert one["counters"] == four["counters"]


def test_ring_contents_deterministic_across_repeat_runs(tmp_path):
    """Two identical recorded runs produce identical ring contents —
    including the sequence numbers (full deterministic_events view)."""
    rings = []
    for i in range(2):
        config = config_for(1)
        frames = benchmark_frames(config, "crazy")
        recorder = FlightRecorder(
            dump_dir=tmp_path / str(i), capture_logs=False
        )
        try:
            run_stream(
                config, frames,
                recorder=recorder, monitor=LiveMonitor(window=8),
            )
        finally:
            recorder.close()
        doc = recorder.document()
        stream = doc["streams"]["default"]
        rings.append({
            "spans": deterministic_events(stream["spans"]),
            "snapshots": deterministic_events(stream["snapshots"]),
            "alerts": deterministic_events(stream["alerts"]),
            "counters": stream["counters"],
        })
    assert rings[0] == rings[1]
    assert WALL_FIELDS  # the exclusions above are the entire allowance
