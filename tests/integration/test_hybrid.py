"""Hybrid (RBCD + software fallback) system tests."""

import pytest

from repro.geometry.primitives import make_box, make_uv_sphere
from repro.geometry.vec import Mat4, Vec3
from repro.hybrid import HybridCDSystem, aabb_outside_frustum
from repro.scenes.camera import Camera

CAMERA = Camera(eye=Vec3(0, 0, 6), target=Vec3.zero(), fov_y_deg=60, far=50.0)
BOX = make_box(Vec3(0.5, 0.5, 0.5))


def at(x, y=0.0, z=0.0) -> Mat4:
    return Mat4.translation(Vec3(x, y, z))


class TestFrustumTest:
    def vp(self):
        return CAMERA.projection(1.0) @ CAMERA.view()

    def test_centered_box_inside(self):
        assert not aabb_outside_frustum(BOX.aabb(), self.vp())

    def test_far_left_box_outside(self):
        assert aabb_outside_frustum(BOX.aabb().transformed(at(-50.0)), self.vp())

    def test_behind_camera_outside(self):
        assert aabb_outside_frustum(BOX.aabb().transformed(at(0, 0, 20)), self.vp())

    def test_straddling_edge_counts_as_inside(self):
        # Partially visible: conservative test must keep it.
        box = BOX.aabb().transformed(at(0, 0, 5.0))  # pokes past near plane
        assert not aabb_outside_frustum(box, self.vp())


class TestHybridDetection:
    def make(self):
        return HybridCDSystem(resolution=(160, 120))

    def test_onscreen_pair_via_rbcd(self):
        system = self.make()
        result = system.detect(
            [(1, BOX, at(-0.3)), (2, BOX, at(0.3))], CAMERA
        )
        assert result.pairs == {(1, 2)}
        assert result.rbcd_pairs == {(1, 2)}
        assert not result.software_pairs
        assert not result.offscreen_ids

    def test_offscreen_pair_via_software(self):
        system = self.make()
        result = system.detect(
            [(1, BOX, at(-40.0)), (2, BOX, at(-40.5))], CAMERA
        )
        assert result.pairs == {(1, 2)}
        assert result.software_pairs == {(1, 2)}
        assert result.offscreen_ids == {1, 2}
        assert result.software_ops.total > 0

    def test_mixed_scene(self):
        system = self.make()
        result = system.detect(
            [
                (1, BOX, at(-0.3)),       # on-screen, collides with 2
                (2, BOX, at(0.3)),
                (3, BOX, at(-40.0)),      # off-screen, collides with 4
                (4, BOX, at(-40.6)),
                (5, BOX, at(40.0)),       # off-screen, alone
            ],
            CAMERA,
        )
        assert result.pairs == {(1, 2), (3, 4)}
        assert result.offscreen_ids == {3, 4, 5}

    def test_offscreen_separated_pair_clear(self):
        system = self.make()
        result = system.detect(
            [(1, BOX, at(-40.0)), (2, BOX, at(-45.0))], CAMERA
        )
        assert result.pairs == set()

    def test_empty_scene(self):
        assert self.make().detect([], CAMERA).pairs == set()

    def test_single_offscreen_object(self):
        result = self.make().detect([(1, BOX, at(-40.0))], CAMERA)
        assert result.pairs == set()
        assert result.offscreen_ids == {1}

    def test_straddling_pair_detected(self):
        """One object partly on screen, its partner fully off: the AABB
        prefilter + GJK path must still find the contact."""
        system = self.make()
        # Place the pair near the left frustum edge at z=0: half-width
        # of the frustum there is ~3.46 for fov 60 at distance 6.
        result = system.detect(
            [(1, BOX, at(-3.4)), (2, BOX, at(-4.1))], CAMERA
        )
        assert (1, 2) in result.pairs

    def test_full_frame_mode(self):
        system = HybridCDSystem(resolution=(160, 120), raster_only=False)
        result = system.detect([(1, BOX, at(-0.3)), (2, BOX, at(0.3))], CAMERA)
        assert result.pairs == {(1, 2)}
