"""Public API (repro.core) tests."""

import numpy as np
import pytest

import repro
from repro import RBCDSystem, detect_collisions
from repro.core import default_camera_for
from repro.geometry.primitives import make_box, make_uv_sphere
from repro.geometry.vec import Mat4, Vec3
from repro.scenes.camera import Camera


def objects(separation: float):
    box = make_box(Vec3(0.5, 0.5, 0.5))
    return [
        (1, box, Mat4.translation(Vec3(-separation / 2, 0, 0))),
        (2, box, Mat4.translation(Vec3(separation / 2, 0, 0))),
    ]


class TestDetectCollisions:
    def test_overlapping_detected(self):
        assert detect_collisions(objects(0.7)) == {(1, 2)}

    def test_separated_clear(self):
        assert detect_collisions(objects(2.0)) == set()

    def test_empty_input(self):
        assert detect_collisions([]) == set()

    def test_explicit_camera(self):
        camera = Camera(eye=Vec3(0, 0, 6), target=Vec3.zero())
        assert detect_collisions(objects(0.7), camera=camera) == {(1, 2)}

    def test_three_objects(self):
        box = make_box(Vec3(0.5, 0.5, 0.5))
        objs = [
            (1, box, Mat4.translation(Vec3(0, 0, 0))),
            (2, box, Mat4.translation(Vec3(0.7, 0, 0))),
            (3, box, Mat4.translation(Vec3(5, 0, 0))),
        ]
        assert detect_collisions(objs) == {(1, 2)}

    def test_default_camera_frames_everything(self):
        cam = default_camera_for(objects(10.0))
        assert detect_collisions(objects(10.0), camera=cam) == set()


class TestRBCDSystem:
    def test_detect_returns_full_result(self):
        system = RBCDSystem(resolution=(160, 96))
        camera = Camera(eye=Vec3(0, 0, 6), target=Vec3.zero())
        result = system.detect(objects(0.7), camera)
        assert result.pairs == {(1, 2)}
        assert result.collides(1, 2)
        assert not result.collides(1, 3)
        contacts = result.contacts(1, 2)
        assert contacts
        first = contacts[0]
        assert 0 <= first.x < 160 and 0 <= first.y < 96
        assert 0.0 <= first.z_front <= first.z_back <= 1.0

    def test_stats_exposed(self):
        system = RBCDSystem(resolution=(160, 96))
        camera = Camera(eye=Vec3(0, 0, 6), target=Vec3.zero())
        result = system.detect(objects(0.7), camera)
        assert result.stats.fragments_produced > 0
        assert result.color.shape == (96, 160, 3)
        assert result.z_buffer.shape == (96, 160)

    def test_raster_only_mode(self):
        system = RBCDSystem(resolution=(160, 96))
        camera = Camera(eye=Vec3(0, 0, 6), target=Vec3.zero())
        result = system.detect(objects(0.7), camera, raster_only=True)
        assert result.pairs == {(1, 2)}
        assert result.stats.fragments_shaded == 0

    def test_custom_zeb_configuration(self):
        system = RBCDSystem(resolution=(160, 96), zeb_count=1, list_length=4)
        assert system.config.rbcd.zeb_count == 1
        assert system.config.rbcd.list_length == 4

    def test_extra_draws_render_but_do_not_collide(self):
        from repro.gpu.commands import DrawCommand

        system = RBCDSystem(resolution=(160, 96))
        camera = Camera(eye=Vec3(0, 0, 6), target=Vec3.zero())
        scenery = DrawCommand(
            make_uv_sphere(0.4), Mat4.translation(Vec3(0, 0.4, 0))
        )
        result = system.detect(objects(2.0), camera, extra_draws=(scenery,))
        assert result.pairs == set()

    def test_version_exported(self):
        assert repro.__version__
