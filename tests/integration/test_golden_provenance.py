"""Golden-frame provenance regression: evidence snapshots of two scenes.

Renders one fixed frame of the ``cap`` and ``temple`` workloads (the
same frame the golden counter/energy fixtures use) with a
:class:`ProvenanceRecorder` attached and compares the complete evidence
stream — every pair record with its witness pixel, ZEB elements,
FF-Stack depth, and Figure-5 case — plus the case histogram against
committed JSON fixtures.  Any change to rasterization, ZEB insertion,
the Z-Overlap Test, or the evidence plumbing shows up as a precise
per-record diff instead of a silent drift.

Regenerate the fixtures (after an *intentional* change) with:

    PYTHONPATH=src python tests/integration/test_golden_provenance.py
"""

import json
from pathlib import Path

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.observability.provenance import (
    ProvenanceRecorder,
    validate_evidence_record,
)
from repro.scenes.benchmarks import workload_by_alias

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures"
SCENES = ("cap", "temple")
WIDTH, HEIGHT = 160, 96
DETAIL = 1
# A provenance fixture is only interesting on a frame that emits pairs:
# cap collides at the counter-fixtures' t=1.0, temple only around t=2.0.
FRAME_TIMES = {"cap": 1.0, "temple": 2.0}


def fixture_path(alias: str) -> Path:
    return FIXTURE_DIR / f"golden_provenance_{alias}.json"


def snapshot_scene(alias: str) -> dict:
    """Render the golden frame and collect the evidence stream."""
    config = GPUConfig().with_screen(WIDTH, HEIGHT)
    workload = workload_by_alias(alias, detail=DETAIL)
    frame = workload.scene.frame_at(FRAME_TIMES[alias], config)

    recorder = ProvenanceRecorder()
    gpu = GPU(config, rbcd_enabled=True, provenance=recorder)
    try:
        result = gpu.render_frame(frame)
    finally:
        gpu.close()
    assert result.collisions is not None

    return {
        "scene": alias,
        "width": WIDTH,
        "height": HEIGHT,
        "detail": DETAIL,
        "frame_time": FRAME_TIMES[alias],
        "pairs": [list(p) for p in result.collisions.as_sorted_pairs()],
        "case_histogram": recorder.case_histogram(),
        "self_pairs_filtered": recorder.self_pairs_filtered,
        "tiles_recorded": recorder.tiles_recorded,
        "records": [ev.as_record() for ev in recorder.records],
    }


@pytest.mark.parametrize("alias", SCENES)
def test_golden_provenance(alias):
    path = fixture_path(alias)
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        f"PYTHONPATH=src python {__file__}"
    )
    expected = json.loads(path.read_text())
    actual = snapshot_scene(alias)

    assert actual["pairs"] == expected["pairs"], "collision pairs drifted"
    assert actual["case_histogram"] == expected["case_histogram"], (
        "Figure-5 case histogram drifted"
    )
    assert actual["self_pairs_filtered"] == expected["self_pairs_filtered"]
    assert actual["tiles_recorded"] == expected["tiles_recorded"]
    assert len(actual["records"]) == len(expected["records"]), (
        "evidence record count drifted"
    )
    for k, (got, want) in enumerate(
        zip(actual["records"], expected["records"])
    ):
        assert got == want, f"evidence record {k} drifted"


@pytest.mark.parametrize("alias", SCENES)
def test_fixture_records_validate(alias):
    """Committed fixtures stay valid against the evidence schema."""
    fixture = json.loads(fixture_path(alias).read_text())
    assert fixture["records"], "golden frame emitted no pairs?"
    for record in fixture["records"]:
        assert validate_evidence_record(record) == []


@pytest.mark.parametrize("alias", SCENES)
def test_fixture_metadata_matches_test_config(alias):
    """Guard against editing the test constants without regenerating."""
    fixture = json.loads(fixture_path(alias).read_text())
    assert fixture["scene"] == alias
    assert (fixture["width"], fixture["height"]) == (WIDTH, HEIGHT)
    assert fixture["detail"] == DETAIL
    assert fixture["frame_time"] == FRAME_TIMES[alias]


if __name__ == "__main__":
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scene_alias in SCENES:
        out = fixture_path(scene_alias)
        out.write_text(
            json.dumps(snapshot_scene(scene_alias), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {out}")
