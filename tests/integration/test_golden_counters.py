"""Golden-frame counter regression: per-tile snapshots of two scenes.

Renders one fixed frame of two benchmark workloads (``cap`` and
``temple``) at a small resolution and compares the per-tile RBCD
counters plus the frame-level GPU counters against committed JSON
fixtures.  Any change to binning, rasterization order, ZEB insertion,
the Z-Overlap Test, or the cycle model shows up here as a precise
per-tile diff instead of a silent drift.

Regenerate the fixtures (after an *intentional* change) with:

    PYTHONPATH=src python tests/integration/test_golden_counters.py
"""

import json
from pathlib import Path

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.parallel import SerialTileExecutor, gather_tile_tasks
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import workload_by_alias

FIXTURE_DIR = Path(__file__).resolve().parent.parent / "fixtures"
SCENES = ("cap", "temple")
WIDTH, HEIGHT = 160, 96
DETAIL = 1
FRAME_TIME = 1.0  # mid-run: objects are interacting in both scenes

# Frame-level counters included in the snapshot.  Wall-clock metrics
# are deliberately absent: everything here is deterministic.
FRAME_COUNTER_NAMES = (
    "gpu.geometry.triangles_assembled",
    "gpu.geometry.triangles_binned",
    "gpu.geometry.geometry_cycles",
    "gpu.raster.fragments_produced",
    "gpu.raster.early_z_tests",
    "gpu.raster.early_z_passes",
    "gpu.rbcd.rbcd_fragments_in",
    "gpu.rbcd.zeb_insertions",
    "gpu.rbcd.zeb_overflow_events",
    "gpu.rbcd.zeb_spare_allocations",
    "gpu.rbcd.zeb_lists_analyzed",
    "gpu.rbcd.overlap_elements_read",
    "gpu.rbcd.collision_pairs_emitted",
    "gpu.rbcd.rbcd_cycles",
)


def fixture_path(alias: str) -> Path:
    return FIXTURE_DIR / f"golden_counters_{alias}.json"


def snapshot_scene(alias: str) -> dict:
    """Render the golden frame and collect per-tile + frame counters."""
    config = GPUConfig().with_screen(WIDTH, HEIGHT)
    workload = workload_by_alias(alias, detail=DETAIL)
    frame = workload.scene.frame_at(FRAME_TIME, config)

    gpu = GPU(config, rbcd_enabled=True)
    result = gpu.render_frame(frame, keep_fragments=True)
    assert result.fragments is not None

    registry = result.stats.registry()
    missing = [n for n in FRAME_COUNTER_NAMES if n not in registry]
    assert not missing, f"counters renamed or removed: {missing}"
    frame_counters = {name: registry[name] for name in FRAME_COUNTER_NAMES}

    tiles = []
    executor = SerialTileExecutor()
    tasks = gather_tile_tasks(result.fragments, config)
    for tile in executor.run(config, tasks):
        tiles.append({
            "tile_index": tile.tile_index,
            "insertions": tile.zeb.insertions,
            "overflow_events": tile.zeb.overflow_events,
            "spare_allocations": tile.zeb.spare_allocations,
            "analyzed_lists": tile.analyzed_lists,
            "analyzed_elements": tile.analyzed_elements,
            "insertion_cycles": tile.insertion_cycles,
            "overlap_cycles": tile.overlap_cycles,
            "pair_records": tile.overlap.pair_records,
        })

    return {
        "scene": alias,
        "width": WIDTH,
        "height": HEIGHT,
        "detail": DETAIL,
        "frame_time": FRAME_TIME,
        "frame_counters": frame_counters,
        "tiles": tiles,
    }


@pytest.mark.parametrize("alias", SCENES)
def test_golden_counters(alias):
    path = fixture_path(alias)
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        f"PYTHONPATH=src python {__file__}"
    )
    expected = json.loads(path.read_text())
    actual = snapshot_scene(alias)

    assert actual["frame_counters"] == expected["frame_counters"], (
        "frame-level counters drifted"
    )
    expected_tiles = {t["tile_index"]: t for t in expected["tiles"]}
    actual_tiles = {t["tile_index"]: t for t in actual["tiles"]}
    assert sorted(actual_tiles) == sorted(expected_tiles), (
        "set of active tiles changed"
    )
    for tile_index, want in expected_tiles.items():
        got = actual_tiles[tile_index]
        assert got == want, f"tile {tile_index} counters drifted"


@pytest.mark.parametrize("alias", SCENES)
def test_fixture_metadata_matches_test_config(alias):
    """Guard against editing the test constants without regenerating."""
    path = fixture_path(alias)
    assert path.exists()
    fixture = json.loads(path.read_text())
    assert fixture["scene"] == alias
    assert (fixture["width"], fixture["height"]) == (WIDTH, HEIGHT)
    assert fixture["detail"] == DETAIL
    assert fixture["frame_time"] == FRAME_TIME


if __name__ == "__main__":
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for scene_alias in SCENES:
        out = fixture_path(scene_alias)
        out.write_text(
            json.dumps(snapshot_scene(scene_alias), indent=2, sort_keys=True)
            + "\n"
        )
        print(f"wrote {out}")
