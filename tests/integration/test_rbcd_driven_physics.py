"""End-to-end: a physics simulation driven by RBCD collisions.

The Figure 7 claim in executable form — the same drop scene is
simulated twice, once with the software CD pipeline feeding the
response solver and once with the GPU's RBCD unit; the two runs must
settle into the same configuration (the two detectors answer the same
geometric question, so the physics can't tell them apart).
"""

import pytest

from repro.core import RBCDSystem
from repro.geometry.primitives import make_box, make_icosphere
from repro.geometry.vec import Vec3
from repro.physics.dynamics import PhysicsWorld, RigidBody
from repro.physics.world import CollisionWorld
from repro.scenes.camera import Camera

FRAMES = 150
DT = 1.0 / 60.0


def build_world() -> PhysicsWorld:
    world = PhysicsWorld()
    world.add_body(
        RigidBody(0, make_box(Vec3(4.0, 0.4, 4.0)), Vec3(0, 0, 0),
                  inverse_mass=0.0)
    )
    ball = make_icosphere(0.45, subdivisions=2)
    world.add_body(RigidBody(1, ball, Vec3(-0.2, 2.5, 0.0), restitution=0.2))
    world.add_body(RigidBody(2, ball, Vec3(0.25, 4.0, 0.1), restitution=0.2))
    return world


def run_with_software() -> PhysicsWorld:
    world = build_world()
    cd = CollisionWorld()
    for body in world.bodies():
        cd.add_object(body.body_id, body.mesh)
    for _ in range(FRAMES):
        for body in world.bodies():
            cd.set_transform(body.body_id, body.model_matrix())
        world.step(DT, cd.detect("broad+narrow").pairs)
    return world


def run_with_rbcd() -> PhysicsWorld:
    world = build_world()
    system = RBCDSystem(resolution=(256, 160))
    camera = Camera(eye=Vec3(0.0, 2.5, 9.0), target=Vec3(0.0, 1.5, 0.0))
    for _ in range(FRAMES):
        objects = [
            (body.body_id, body.mesh, body.model_matrix())
            for body in world.bodies()
        ]
        result = system.detect(objects, camera, raster_only=True)
        world.step(DT, sorted(result.pairs))
    return world


@pytest.fixture(scope="module")
def both_runs():
    return run_with_software(), run_with_rbcd()


class TestRBCDDrivenPhysics:
    def test_both_simulations_settle(self, both_runs):
        software, rbcd = both_runs
        for world in both_runs:
            for body_id in (1, 2):
                assert abs(world.body(body_id).velocity.y) < 1.0

    def test_rest_heights_agree(self, both_runs):
        software, rbcd = both_runs
        for body_id in (1, 2):
            ys = software.body(body_id).position.y
            yr = rbcd.body(body_id).position.y
            assert yr == pytest.approx(ys, abs=0.2), body_id

    def test_balls_rest_on_floor_or_each_other(self, both_runs):
        _, rbcd = both_runs
        lower = min(rbcd.body(1).position.y, rbcd.body(2).position.y)
        # Floor top 0.4 + ball radius 0.45 ~= 0.85.
        assert lower == pytest.approx(0.85, abs=0.1)
