"""Unit tests for the provenance layer: evidence, merge, validation.

The shard-merge property asserted here is the provenance analogue of
the counter algebra: evidence records carry a total order
``(frame, tile, record)``, so recorders fed from per-tile shards in any
grouping or order merge to exactly what a single serial recorder
observes.
"""

import json

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.parallel import (
    SerialTileExecutor,
    gather_tile_tasks,
    tile_evidence_of,
)
from repro.gpu.pipeline import GPU
from repro.observability.export import (
    provenance_instant_events,
    to_chrome_trace,
    to_provenance_ndjson,
)
from repro.observability.provenance import (
    PairEvidence,
    ProvenanceRecorder,
    evidence_from_tile,
    validate_evidence_record,
    validate_provenance_ndjson,
)
from repro.observability.tracer import Tracer
from repro.rbcd.overlap import CASE_CROSSING, CASE_NESTED
from tests.conftest import sphere_pair_frame, two_boxes_frame


def render_with_recorder(config, frame):
    recorder = ProvenanceRecorder()
    gpu = GPU(config, rbcd_enabled=True, provenance=recorder)
    try:
        result = gpu.render_frame(frame, keep_fragments=True)
    finally:
        gpu.close()
    return recorder, result


@pytest.fixture
def colliding(small_config):
    return render_with_recorder(
        small_config, two_boxes_frame(small_config, 0.8)
    )


class TestEvidence:
    def test_records_validate_against_the_schema(self, colliding):
        recorder, _ = colliding
        assert recorder.pairs_recorded > 0
        for ev in recorder.records:
            assert validate_evidence_record(ev.as_record()) == []

    def test_evidence_pairs_are_canonical_and_on_screen(
        self, colliding, small_config
    ):
        recorder, _ = colliding
        for ev in recorder.records:
            lo, hi = ev.pair
            assert lo < hi
            assert {lo, hi} == {ev.id_front, ev.id_back}
            assert 0 <= ev.x < small_config.screen_width
            assert 0 <= ev.y < small_config.screen_height
            assert ev.stack_depth >= 1
            assert ev.case_id in (CASE_CROSSING, CASE_NESTED)
            # Sorted list: the front (Idi) element starts no deeper
            # than the back (Ecur) element that closed on it.
            assert ev.z_front_code <= ev.z_back_code
            assert 0.0 <= ev.z_front <= ev.z_back <= 1.0

    def test_pairs_for_and_witness_pixels(self, colliding):
        recorder, result = colliding
        (pair,) = result.collisions.as_sorted_pairs()
        assert recorder.pairs_for(*pair)
        assert recorder.pairs_for(pair[1], pair[0]) == recorder.pairs_for(
            *pair
        )
        pixels = recorder.witness_pixels(*pair)
        assert pixels == sorted(set(pixels))
        assert recorder.pairs_for(99, 100) == []

    def test_registry_names_and_values(self, colliding):
        recorder, _ = colliding
        counters = recorder.registry().as_dict()
        assert counters["rbcd.evidence.pairs"] == recorder.pairs_recorded
        assert counters["rbcd.evidence.frames"] == 1
        assert counters["rbcd.evidence.tiles"] == recorder.tiles_recorded
        assert (
            counters["rbcd.case.crossing"] + counters["rbcd.case.nested"]
            == recorder.pairs_recorded
        )
        assert counters["rbcd.case.disjoint"] >= 0


class TestShardMerge:
    def shards(self, config, frame):
        """Per-tile shard recorders + the serial reference recorder."""
        reference, result = render_with_recorder(config, frame)
        tasks = gather_tile_tasks(result.fragments, config)
        tiles = SerialTileExecutor().run(config, tasks)
        shard_recorders = []
        for tile in tiles:
            shard = ProvenanceRecorder()
            shard.begin_frame()
            shard.record_tile(tile, config)
            shard_recorders.append(shard)
        return reference, shard_recorders

    def fingerprint(self, recorder):
        return (
            recorder.records,
            recorder.case_counts,
            recorder.self_pairs_filtered,
            recorder.tiles_recorded,
            recorder.frames,
        )

    def test_any_merge_order_matches_the_serial_recorder(self, small_config):
        frame = sphere_pair_frame(small_config, 0.7)
        reference, shards = self.shards(small_config, frame)
        assert len(shards) > 2  # the property needs real shards

        forward = ProvenanceRecorder()
        for shard in shards:
            forward = forward.merge(shard)
        backward = ProvenanceRecorder()
        for shard in reversed(shards):
            backward = backward.merge(shard)
        assert self.fingerprint(forward) == self.fingerprint(reference)
        assert self.fingerprint(backward) == self.fingerprint(reference)

    def test_merge_is_associative_over_groupings(self, small_config):
        frame = sphere_pair_frame(small_config, 0.7)
        reference, shards = self.shards(small_config, frame)
        mid = len(shards) // 2
        left = ProvenanceRecorder()
        for shard in shards[:mid]:
            left = left.merge(shard)
        right = ProvenanceRecorder()
        for shard in shards[mid:]:
            right = right.merge(shard)
        assert self.fingerprint(left.merge(right)) == self.fingerprint(
            reference
        )

    def test_tile_evidence_of_matches_the_recorder(self, small_config):
        frame = two_boxes_frame(small_config, 0.8)
        reference, result = render_with_recorder(
            small_config, frame
        )
        tasks = gather_tile_tasks(result.fragments, small_config)
        tiles = SerialTileExecutor().run(small_config, tasks)
        sharded = [
            ev
            for tile in tiles
            for ev in tile_evidence_of(tile, small_config, frame=0)
        ]
        assert sharded == reference.records

    def test_evidence_from_tile_empty_without_pairs(self, small_config):
        frame = two_boxes_frame(small_config, 1.6)  # separated: no pairs
        _, result = render_with_recorder(small_config, frame)
        tasks = gather_tile_tasks(result.fragments, small_config)
        for tile in SerialTileExecutor().run(small_config, tasks):
            assert evidence_from_tile(tile, small_config) == []


class TestExport:
    def test_ndjson_roundtrip_validates(self, colliding):
        recorder, _ = colliding
        text = to_provenance_ndjson(recorder)
        assert validate_provenance_ndjson(text) == recorder.pairs_recorded
        first = json.loads(text.splitlines()[0])
        assert first == recorder.records[0].as_record()

    def test_empty_recorder_exports_empty_log(self):
        assert to_provenance_ndjson(ProvenanceRecorder()) == ""
        assert validate_provenance_ndjson("") == 0
        assert validate_provenance_ndjson("\n  \n") == 0

    def test_chrome_trace_gains_instant_events(self, colliding):
        recorder, _ = colliding
        doc = to_chrome_trace(Tracer(), provenance=recorder)
        instants = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert len(instants) == recorder.pairs_recorded
        assert instants == provenance_instant_events(recorder)
        for event, ev in zip(instants, recorder.records):
            assert event["args"] == ev.as_record()
        # Without a recorder the document is unchanged by the new arg.
        plain = to_chrome_trace(Tracer())
        assert all(e.get("ph") != "i" for e in plain["traceEvents"])


class TestValidation:
    def valid(self):
        return PairEvidence(
            frame=0, tile=3, record=1, x=10, y=7,
            id_front=2, id_back=1, z_front_code=5, z_back_code=9,
            z_front=0.1, z_back=0.4, stack_depth=2,
            case_id=CASE_CROSSING,
        ).as_record()

    def test_valid_record_passes(self):
        assert validate_evidence_record(self.valid()) == []

    @pytest.mark.parametrize(
        "mutate, needle",
        [
            (lambda r: r.pop("pixel"), "missing field 'pixel'"),
            (lambda r: r.update(type="span"), "type"),
            (lambda r: r.update(frame=-1), "frame"),
            (lambda r: r.update(stack_depth=0), "stack_depth"),
            (lambda r: r.update(pixel=[4]), "pixel"),
            (lambda r: r.update(pair=[2, 1]), "pair"),
            (lambda r: r.update(pair=[1, 1]), "pair"),
            (lambda r: r["elements"].pop(), "elements"),
            (lambda r: r["elements"][0].update(face="back"), "face"),
            (lambda r: r["elements"][1].update(z=1.5), "z in [0, 1]"),
            (lambda r: r["elements"][0].update(object=-2), "object"),
            (lambda r: r.update(case_id=99), "case_id"),
            (lambda r: r.update(case="nested"), "does not match"),
        ],
    )
    def test_broken_records_are_rejected(self, mutate, needle):
        record = self.valid()
        mutate(record)
        errors = validate_evidence_record(record)
        assert errors, "validator accepted a broken record"
        assert any(needle in e for e in errors)

    def test_non_dict_record_is_rejected(self):
        assert validate_evidence_record([1, 2]) != []

    def test_ndjson_validator_names_the_offending_line(self):
        good = json.dumps(self.valid())
        with pytest.raises(ValueError, match="line 2"):
            validate_provenance_ndjson(good + "\nnot json\n")
        bad = self.valid()
        bad["stack_depth"] = 0
        with pytest.raises(ValueError, match="line 3"):
            validate_provenance_ndjson(
                good + "\n" + good + "\n" + json.dumps(bad) + "\n"
            )
