"""Property suite: per-tenant telemetry shards merge exactly.

The serving frontend's global registry is ``CounterRegistry.sum`` over
per-tenant shards, and its claim — proven here with hypothesis — is
that the merge is an exact algebra: associative, commutative, with the
empty registry as identity, so *any* interleave the cross-tenant
batching produces reconstructs the same global registry bit for bit.

Counter values are drawn as integers and dyadic rationals (multiples
of 1/256 with bounded magnitude): every value, partial sum and total
is exactly representable in a float, so float addition incurs no
rounding and the algebraic laws hold bitwise — the same reason the
simulator's cycle counters (integer-scaled costs) merge exactly
across executor shards.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.counters import CounterRegistry, CounterSpec
from repro.observability.window import QuantileSketch, WindowAggregate

# A small shared name pool so shards overlap (the interesting case:
# merging must sum shared names and union disjoint ones).
_NAMES = ("gpu.cycles", "rbcd.insertions", "energy.j", "serve.frames")
_KINDS = {"gpu.cycles": "float", "rbcd.insertions": "int",
          "energy.j": "float", "serve.frames": "int"}


def _dyadic(draw_int: int) -> float:
    """Map an int to an exactly-representable float (multiples of 2^-8)."""
    return draw_int / 256.0


@st.composite
def registries(draw):
    registry = CounterRegistry()
    for name in draw(st.sets(st.sampled_from(_NAMES), min_size=1)):
        kind = _KINDS[name]
        registry.register(CounterSpec(name, kind=kind))
        if kind == "int":
            registry.set(name, draw(st.integers(0, 2**40)))
        else:
            registry.set(
                name, _dyadic(draw(st.integers(0, 2**40)))
            )
    return registry


@st.composite
def aggregates(draw):
    return WindowAggregate.of(
        _dyadic(value)
        for value in draw(st.lists(st.integers(-2**30, 2**30), max_size=8))
    )


@st.composite
def sketches(draw):
    sketch = QuantileSketch()
    for value in draw(st.lists(st.integers(0, 2**20), max_size=8)):
        sketch.add(_dyadic(value))
    return sketch


class TestRegistryMergeAlgebra:
    @given(registries(), registries())
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(registries(), registries(), registries())
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(registries())
    def test_empty_is_identity(self, a):
        empty = CounterRegistry()
        assert a.merge(empty) == a
        assert empty.merge(a) == a

    @settings(max_examples=25)
    @given(st.lists(registries(), min_size=1, max_size=4))
    def test_any_merge_order_reproduces_the_global_registry(self, shards):
        """The tenant-isolation law: however the batching interleaved
        the shards, summing them in any order is the same registry."""
        reference = CounterRegistry.sum(shards)
        for permutation in itertools.permutations(shards):
            assert CounterRegistry.sum(permutation) == reference
            assert (
                CounterRegistry.sum(permutation).as_dict()
                == reference.as_dict()
            )


class TestWindowAggregateMergeAlgebra:
    @given(aggregates(), aggregates())
    def test_commutative(self, a, b):
        assert a.merge(b).as_dict() == b.merge(a).as_dict()

    @given(aggregates(), aggregates(), aggregates())
    def test_associative(self, a, b, c):
        assert (
            a.merge(b).merge(c).as_dict() == a.merge(b.merge(c)).as_dict()
        )

    @given(aggregates())
    def test_empty_is_identity(self, a):
        assert a.merge(WindowAggregate()).as_dict() == a.as_dict()
        assert WindowAggregate().merge(a).as_dict() == a.as_dict()


class TestQuantileSketchMergeAlgebra:
    @given(sketches(), sketches())
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(sketches(), sketches(), sketches())
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(sketches())
    def test_empty_is_identity(self, a):
        assert a.merge(QuantileSketch()) == a
        assert QuantileSketch().merge(a) == a


class TestLiveMonitorShardMerge:
    """Tenant isolation at the LiveMonitor level, with synthetic frames."""

    class _Stats:
        def __init__(self, seed: int) -> None:
            self.gpu_cycles = float(1000 + seed)
            self.rbcd_cycles = float(seed % 7)
            self.zeb_insertions = seed % 11
            self.zeb_overflow_events = seed % 3
            self.ff_stack_overflows = seed % 2
            self.zeb_lists_analyzed = 1 + seed % 5
            self.collision_pairs_emitted = seed % 4

        def registry(self):
            registry = CounterRegistry()
            registry.counter("gpu.gpu_cycles", kind="float", unit="cycles")
            registry.set("gpu.gpu_cycles", self.gpu_cycles)
            registry.counter("gpu.rbcd.zeb_insertions")
            registry.set("gpu.rbcd.zeb_insertions", self.zeb_insertions)
            return registry

    class _Energy:
        def __init__(self, seed: int) -> None:
            self.total_j = (seed % 16) / 256.0
            self.delay_s = (1 + seed % 8) / 256.0

        def registry(self):
            registry = CounterRegistry()
            registry.counter("energy.total_j", kind="float", unit="J")
            registry.set("energy.total_j", self.total_j)
            return registry

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.lists(st.integers(0, 255), min_size=1, max_size=6),
        min_size=1, max_size=4,
    ))
    def test_shard_totals_sum_to_the_global_monitor(self, tenant_seeds):
        from repro.observability.live import LiveMonitor, default_rules

        shards = []
        global_monitor = LiveMonitor(rules=default_rules(
            max_activity_ratio=None, max_overflow_rate=None,
            max_ffstack_overflow_rate=None, max_joules_per_frame=None,
        ))
        for seeds in tenant_seeds:
            monitor = LiveMonitor(rules=[])
            for seed in seeds:
                monitor.observe_frame(self._Stats(seed), self._Energy(seed))
                global_monitor.observe_frame(
                    self._Stats(seed), self._Energy(seed)
                )
            shards.append(monitor.totals_registry())
        reference = global_monitor.totals_registry()
        for permutation in itertools.permutations(shards):
            merged = CounterRegistry.sum(permutation)
            assert merged == reference
            assert merged.as_dict() == reference.as_dict()
