"""Regression gate: policy, wall/deterministic comparisons, reporting."""

import copy

import pytest

from repro.observability.regress import (
    DETERMINISTIC_SCENE_METRICS,
    GatePolicy,
    GateReport,
    MetricComparison,
    compare_documents,
)


def make_doc(wall_runs=(10.0, 11.0, 12.0), cycles=100.0, gpu_cycles=5000.0,
             energy_total=1e-3, edp=1e-6):
    """A minimal gate-comparable document (one scene, one stage)."""
    return {
        "config": {"width": 64, "height": 32, "frames": 2, "detail": 1,
                   "quick": True, "runs": len(wall_runs), "profile": False,
                   "kernel_backend": "vectorized", "broad_phase": "lbvh"},
        "scenes": {
            "cap": {
                "stages": {
                    "frame": {
                        "count": 2,
                        "cycles": cycles,
                        "wall_ms_median": sorted(wall_runs)[len(wall_runs) // 2],
                        "wall_ms_runs": list(wall_runs),
                    },
                },
                "totals": {"gpu_cycles": gpu_cycles},
                "counters": {
                    "gpu.mem.dram_bytes_read": 4096.0,
                    "gpu.mem.dram_bytes_written": 2048.0,
                },
                "energy": {
                    "gpu": {"total_j": energy_total * 0.8},
                    "rbcd": {"total_j": energy_total * 0.2},
                    "total_j": energy_total,
                    "edp_js": edp,
                },
                "tilecache": {
                    "enabled": False,
                    "effective_gpu_cycles": gpu_cycles,
                    "effective_total_j": energy_total,
                },
            },
        },
    }


class TestGatePolicy:
    def test_defaults(self):
        policy = GatePolicy()
        assert policy.wall_tol == 0.25
        assert policy.metric_tol == 1e-9
        assert policy.alpha == 0.05

    @pytest.mark.parametrize("kwargs", [
        {"wall_tol": -0.1}, {"metric_tol": -1.0},
        {"alpha": 0.0}, {"alpha": 1.0},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GatePolicy(**kwargs)


class TestSelfComparison:
    def test_document_vs_itself_is_clean(self):
        doc = make_doc()
        report = compare_documents(doc, copy.deepcopy(doc))
        assert report.ok
        assert not report.errors
        assert not report.regressions
        assert not report.improvements
        # frame wall + frame cycles + every deterministic scene metric
        # present in the fixture.
        assert len(report.comparisons) >= 2 + len(DETERMINISTIC_SCENE_METRICS) - 1


class TestWallGating:
    def test_large_significant_slowdown_regresses(self):
        base = make_doc(wall_runs=(1.0, 1.1, 1.2, 1.05, 1.15))
        cur = make_doc(wall_runs=(10.0, 10.5, 11.0, 10.2, 10.8))
        report = compare_documents(base, cur)
        walls = [c for c in report.regressions if c.kind == "wall"]
        assert len(walls) == 1
        assert walls[0].metric == "stages.frame.wall_ms"
        assert "Mann-Whitney" in walls[0].detail

    def test_large_but_overlapping_noise_passes(self):
        # Medians differ by >25% but the samples interleave heavily:
        # no disjoint CI, no significant test => not a regression.
        base = make_doc(wall_runs=(1.0, 9.0, 2.0, 8.0, 3.0))
        cur = make_doc(wall_runs=(8.5, 1.5, 9.5, 2.5, 7.0))
        report = compare_documents(base, cur)
        assert not [c for c in report.regressions if c.kind == "wall"]

    def test_small_slowdown_within_tolerance_passes(self):
        base = make_doc(wall_runs=(10.0, 10.1, 10.2))
        cur = make_doc(wall_runs=(11.0, 11.1, 11.2))  # +10% < 25% tol
        report = compare_documents(base, cur)
        assert not [c for c in report.regressions if c.kind == "wall"]

    def test_significant_speedup_reported_as_improvement(self):
        base = make_doc(wall_runs=(10.0, 10.5, 11.0, 10.2, 10.8))
        cur = make_doc(wall_runs=(1.0, 1.1, 1.2, 1.05, 1.15))
        report = compare_documents(base, cur)
        assert report.ok
        walls = [c for c in report.improvements if c.kind == "wall"]
        assert len(walls) == 1

    def test_single_run_documents_still_gate(self):
        base = make_doc(wall_runs=(1.0,))
        cur = make_doc(wall_runs=(10.0,))
        report = compare_documents(base, cur)
        walls = [c for c in report.regressions if c.kind == "wall"]
        assert len(walls) == 1
        assert "single-run" in walls[0].detail

    def test_wall_tolerance_is_configurable(self):
        base = make_doc(wall_runs=(1.0, 1.0, 1.0, 1.0, 1.0))
        cur = make_doc(wall_runs=(1.1, 1.1, 1.1, 1.1, 1.1))
        strict = compare_documents(base, cur, GatePolicy(wall_tol=0.05))
        loose = compare_documents(base, cur, GatePolicy(wall_tol=4.0))
        assert [c for c in strict.regressions if c.kind == "wall"]
        assert not [c for c in loose.regressions if c.kind == "wall"]


class TestDeterministicGating:
    @pytest.mark.parametrize("mutate,metric", [
        (lambda d: d["scenes"]["cap"]["totals"].update(gpu_cycles=5001.0),
         "totals.gpu_cycles"),
        (lambda d: d["scenes"]["cap"]["counters"].update(
            **{"gpu.mem.dram_bytes_read": 4097.0}),
         "counters.gpu.mem.dram_bytes_read"),
        (lambda d: d["scenes"]["cap"]["energy"].update(total_j=1.1e-3),
         "energy.total_j"),
        (lambda d: d["scenes"]["cap"]["energy"].update(edp_js=2e-6),
         "energy.edp_js"),
        (lambda d: d["scenes"]["cap"]["energy"]["rbcd"].update(total_j=3e-4),
         "energy.rbcd.total_j"),
    ])
    def test_any_increase_regresses(self, mutate, metric):
        base = make_doc()
        cur = make_doc()
        mutate(cur)
        report = compare_documents(base, cur)
        assert not report.ok
        assert metric in [c.metric for c in report.regressions]

    def test_stage_cycle_increase_regresses(self):
        report = compare_documents(make_doc(cycles=100.0), make_doc(cycles=101.0))
        assert "stages.frame.cycles" in [c.metric for c in report.regressions]

    def test_decrease_is_improvement_not_failure(self):
        report = compare_documents(
            make_doc(energy_total=1e-3), make_doc(energy_total=0.5e-3)
        )
        assert report.ok
        improved = {c.metric for c in report.improvements}
        assert "energy.total_j" in improved

    def test_float_noise_within_tolerance_passes(self):
        base = make_doc(gpu_cycles=5000.0)
        cur = make_doc(gpu_cycles=5000.0 * (1.0 + 1e-12))
        assert compare_documents(base, cur).ok

    def test_baseline_missing_metric_is_skipped(self):
        base = make_doc()
        del base["scenes"]["cap"]["energy"]["edp_js"]
        report = compare_documents(base, make_doc())
        assert report.ok
        assert "energy.edp_js" not in [c.metric for c in report.comparisons]

    def test_current_missing_metric_errors(self):
        cur = make_doc()
        del cur["scenes"]["cap"]["energy"]["edp_js"]
        report = compare_documents(make_doc(), cur)
        assert not report.ok
        assert any("edp_js" in e for e in report.errors)


class TestStructuralErrors:
    def test_config_mismatch_refused(self):
        cur = make_doc()
        cur["config"]["width"] = 128
        report = compare_documents(make_doc(), cur)
        assert not report.ok
        assert any("config.width" in e for e in report.errors)
        assert not report.comparisons  # refused before comparing anything

    def test_kernel_backend_mismatch_refused(self):
        # Backends are bit-identical but wall times differ, and wall
        # time is what the gate tests — such documents never compare.
        cur = make_doc()
        cur["config"]["kernel_backend"] = "reference"
        report = compare_documents(make_doc(), cur)
        assert not report.ok
        assert any("config.kernel_backend" in e for e in report.errors)

    def test_broad_phase_mismatch_refused(self):
        cur = make_doc()
        cur["config"]["broad_phase"] = "bruteforce"
        report = compare_documents(make_doc(), cur)
        assert not report.ok
        assert any("config.broad_phase" in e for e in report.errors)

    def test_runs_may_differ(self):
        # runs is a measurement parameter, not a workload parameter.
        base = make_doc(wall_runs=(1.0, 1.1, 1.2))
        cur = make_doc(wall_runs=(1.0, 1.1, 1.2, 1.3, 1.4))
        assert compare_documents(base, cur).ok

    def test_missing_scene_errors(self):
        cur = make_doc()
        cur["scenes"] = {}
        report = compare_documents(make_doc(), cur)
        assert any("cap" in e for e in report.errors)

    def test_missing_wall_samples_errors(self):
        cur = make_doc()
        del cur["scenes"]["cap"]["stages"]["frame"]["wall_ms_runs"]
        report = compare_documents(make_doc(), cur)
        assert any("wall_ms_runs" in e for e in report.errors)

    def test_documents_without_blocks(self):
        report = compare_documents({}, make_doc())
        assert any("config" in e for e in report.errors)


class TestRendering:
    def test_render_mentions_regressions_and_totals(self):
        base = make_doc(energy_total=1e-3)
        cur = make_doc(energy_total=2e-3)
        text = compare_documents(base, cur).render()
        assert "REGRESSION" in text
        assert "energy.total_j" in text
        assert "metrics checked" in text

    def test_render_suggests_baseline_refresh_on_pure_improvement(self):
        base = make_doc(energy_total=2e-3)
        cur = make_doc(energy_total=1e-3)
        text = compare_documents(base, cur).render()
        assert "refreshing the baseline" in text

    def test_ratio_handles_zero_baseline(self):
        comp = MetricComparison(
            scene="cap", metric="m", kind="deterministic",
            baseline=0.0, current=1.0, regressed=True, improved=False,
        )
        assert comp.ratio == float("inf")

    def test_empty_report_is_ok(self):
        assert GateReport().ok


class TestFailureLine:
    def test_regression_produces_greppable_line(self):
        base = make_doc(energy_total=1e-3)
        cur = make_doc(energy_total=2e-3)
        line = compare_documents(base, cur).failure_line()
        assert line.startswith("GATE-FAIL ")
        assert "scene=cap" in line
        assert "metric=energy.gpu.total_j" in line
        assert "kind=deterministic" in line
        assert "baseline=0.0008" in line
        assert "current=0.0016" in line
        assert "ratio=2" in line
        assert "\n" not in line

    def test_structural_error_produces_error_line(self):
        base = make_doc()
        other = make_doc()
        other["config"]["width"] = 999
        line = compare_documents(base, other).failure_line()
        assert line.startswith('GATE-FAIL error="')
        assert "config.width" in line

    def test_first_regression_wins_and_pass_is_empty(self):
        base = make_doc()
        assert compare_documents(base, copy.deepcopy(base)).failure_line() == ""
        report = GateReport(comparisons=[
            MetricComparison(scene="cap", metric="a", kind="deterministic",
                             baseline=1.0, current=2.0, regressed=True,
                             improved=False),
            MetricComparison(scene="cap", metric="b", kind="deterministic",
                             baseline=1.0, current=3.0, regressed=True,
                             improved=False),
        ])
        assert "metric=a" in report.failure_line()
        assert report.regressions == report.comparisons
