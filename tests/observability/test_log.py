"""Structured JSON logging: formatter, event helper, configuration."""

import io
import json
import logging

from repro.observability.log import (
    ROOT_LOGGER_NAME,
    JsonFormatter,
    configure_json_logging,
    get_logger,
    log_event,
)


def capture_events(level=logging.DEBUG):
    """A repro-tree handler writing JSON lines into a StringIO."""
    stream = io.StringIO()
    handler = configure_json_logging(stream=stream, level=level)
    return stream, handler


def teardown_handler(handler):
    root = logging.getLogger(ROOT_LOGGER_NAME)
    root.removeHandler(handler)
    root.propagate = True
    root.setLevel(logging.NOTSET)


def emitted(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestGetLogger:
    def test_normalizes_names_into_repro_tree(self):
        assert get_logger().name == "repro"
        assert get_logger("repro").name == "repro"
        assert get_logger("gpu.parallel").name == "repro.gpu.parallel"
        assert get_logger("repro.gpu.parallel") is get_logger("gpu.parallel")


class TestLogEvent:
    def test_emits_event_name_and_fields(self):
        stream, handler = capture_events()
        try:
            log_event(get_logger("test"), "unit.event", answer=42, label="x")
        finally:
            teardown_handler(handler)
        (record,) = emitted(stream)
        assert record["event"] == "unit.event"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"
        assert record["answer"] == 42
        assert record["label"] == "x"
        assert "ts" in record

    def test_disabled_level_is_a_noop(self):
        stream, handler = capture_events(level=logging.WARNING)
        try:
            log_event(get_logger("test"), "quiet", level=logging.DEBUG)
        finally:
            teardown_handler(handler)
        assert emitted(stream) == []

    def test_reserved_field_names_are_prefixed_not_fatal(self):
        # Alert.as_dict() carries a "message" key; stdlib logging
        # reserves it, so log_event must remap rather than raise.
        stream, handler = capture_events()
        try:
            log_event(
                get_logger("test"), "alerting",
                level=logging.WARNING,
                message="threshold crossed", name="rule-x", value=3,
            )
        finally:
            teardown_handler(handler)
        (record,) = emitted(stream)
        assert record["event"] == "alerting"
        assert record["field_message"] == "threshold crossed"
        assert record["field_name"] == "rule-x"
        assert record["value"] == 3

    def test_non_serializable_values_are_stringified(self):
        stream, handler = capture_events()
        try:
            log_event(get_logger("test"), "odd", payload=object())
        finally:
            teardown_handler(handler)
        (record,) = emitted(stream)
        assert "object object" in record["payload"]


class TestJsonFormatter:
    def test_formats_exceptions(self):
        formatter = JsonFormatter()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys
            record = logging.LogRecord(
                name="repro.test", level=logging.ERROR, pathname="", lineno=0,
                msg="failed", args=(), exc_info=sys.exc_info(),
            )
        payload = json.loads(formatter.format(record))
        assert payload["event"] == "failed"
        assert "RuntimeError: boom" in payload["exception"]

    def test_relative_timestamps_start_near_zero(self):
        formatter = JsonFormatter()
        record = logging.LogRecord(
            name="repro.test", level=logging.INFO, pathname="", lineno=0,
            msg="tick", args=(), exc_info=None,
        )
        payload = json.loads(formatter.format(record))
        assert 0.0 <= payload["ts"] < 60.0

    def test_absolute_timestamps_are_epoch_seconds(self):
        formatter = JsonFormatter(absolute_time=True)
        record = logging.LogRecord(
            name="repro.test", level=logging.INFO, pathname="", lineno=0,
            msg="tick", args=(), exc_info=None,
        )
        payload = json.loads(formatter.format(record))
        assert payload["ts"] > 1e9  # epoch seconds, not relative


class TestConfigureJsonLogging:
    def test_idempotent_reconfiguration(self):
        stream1, handler1 = capture_events()
        stream2, handler2 = capture_events()
        try:
            root = logging.getLogger(ROOT_LOGGER_NAME)
            installed = [
                h for h in root.handlers
                if getattr(h, "_repro_json_handler", False)
            ]
            assert installed == [handler2]  # replaced, not stacked
            log_event(get_logger("test"), "routed")
        finally:
            teardown_handler(handler1)
            teardown_handler(handler2)
        assert emitted(stream1) == []
        assert [r["event"] for r in emitted(stream2)] == ["routed"]
