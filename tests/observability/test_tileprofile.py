"""TileProfiler unit tests: grids, merging, round-trips, guard rails."""

import pytest

from repro.gpu.config import GPUConfig
from repro.observability.tileprofile import GRID_NAMES, TileProfiler


class FakeZeb:
    def __init__(self, insertions):
        self.insertions = insertions


class FakeResult:
    """Duck-typed RBCDTileResult: just the fields record_tile reads."""

    def __init__(self, tile_index, insertion=10.0, overlap=5.0,
                 insertions=3):
        self.tile_index = tile_index
        self.insertion_cycles = insertion
        self.overlap_cycles = overlap
        self.zeb = FakeZeb(insertions)


class FakeEnergyModel:
    """tile_breakdown stand-in pricing every tile at a fixed joule cost."""

    def __init__(self, per_tile_j=2.0):
        self.per_tile_j = per_tile_j

    def tile_breakdown(self, result):
        class Breakdown:
            total_j = self.per_tile_j
        return Breakdown()


def small_config():
    # 64x32 at the default 16x16 tile size: 4x2 = 8 tiles.
    return GPUConfig().with_screen(64, 32)


class TestRecording:
    def test_grids_start_empty_and_dimensions_come_from_config(self):
        profiler = TileProfiler()
        assert profiler.tile_count == 0
        assert profiler.grid("cycles") == []
        profiler.begin_frame(small_config())
        assert (profiler.tiles_x, profiler.tiles_y) == (4, 2)
        assert profiler.grid("cycles") == [0.0] * 8
        assert profiler.frames == 1

    def test_record_tile_accumulates_all_grids(self):
        profiler = TileProfiler()
        profiler.begin_frame(small_config())
        profiler.record_tile(FakeResult(3), replayed=True,
                             energy_model=FakeEnergyModel(2.5))
        profiler.record_tile(FakeResult(3))
        assert profiler.grid("cycles")[3] == 30.0
        assert profiler.grid("energy_j")[3] == 2.5  # model on 1st call only
        assert profiler.grid("activity")[3] == 6.0
        assert profiler.grid("hits")[3] == 1.0
        assert profiler.grid("lookups")[3] == 2.0
        # Untouched tiles stay zero.
        assert profiler.grid("cycles")[0] == 0.0

    def test_record_before_begin_frame_raises(self):
        with pytest.raises(RuntimeError, match="begin_frame"):
            TileProfiler().record_tile(FakeResult(0))

    def test_dimension_change_raises(self):
        profiler = TileProfiler()
        profiler.begin_frame(small_config())
        with pytest.raises(ValueError, match="reset"):
            profiler.begin_frame(GPUConfig().with_screen(128, 128))

    def test_reset_clears_everything(self):
        profiler = TileProfiler()
        profiler.begin_frame(small_config())
        profiler.record_tile(FakeResult(0))
        profiler.reset()
        assert profiler.frames == 0
        assert profiler.tile_count == 0
        # After a reset a different screen size is fine.
        profiler.begin_frame(GPUConfig().with_screen(128, 128))

    def test_unknown_grid_name_raises(self):
        with pytest.raises(KeyError, match="unknown grid"):
            TileProfiler().grid("temperature")


class TestMerge:
    def make(self, tile, cycles=10.0):
        profiler = TileProfiler()
        profiler.begin_frame(small_config())
        profiler.record_tile(FakeResult(tile, insertion=cycles, overlap=0.0))
        return profiler

    def test_merge_adds_elementwise(self):
        a = self.make(0, cycles=10.0)
        b = self.make(0, cycles=5.0)
        b.record_tile(FakeResult(7))
        a.merge(b)
        assert a.grid("cycles")[0] == 15.0
        assert a.grid("cycles")[7] == 15.0
        assert a.frames == 2

    def test_merge_into_empty_copies(self):
        empty = TileProfiler()
        full = self.make(2)
        empty.merge(full)
        assert empty.grid("cycles") == full.grid("cycles")
        # A copy, not an alias.
        full.record_tile(FakeResult(2))
        assert empty.grid("cycles") != full.grid("cycles")

    def test_merge_empty_is_identity(self):
        full = self.make(2)
        before = full.as_dict()
        full.merge(TileProfiler())
        assert full.as_dict() == before

    def test_merge_dimension_mismatch_raises(self):
        other = TileProfiler()
        other.begin_frame(GPUConfig().with_screen(128, 128))
        with pytest.raises(ValueError, match="dimensions"):
            self.make(0).merge(other)

    def test_merge_is_grouping_invariant(self):
        """Any shard grouping merges to the serial result — the property
        the parallel executor's absorb path relies on."""
        results = [FakeResult(i % 8, insertion=float(i)) for i in range(12)]
        serial = TileProfiler()
        serial.begin_frame(small_config())
        for result in results:
            serial.record_tile(result)
        merged = TileProfiler()
        merged.begin_frame(small_config())
        for chunk_start in range(0, 12, 5):  # uneven shards on purpose
            shard = TileProfiler()
            shard.begin_frame(small_config())
            for result in results[chunk_start:chunk_start + 5]:
                shard.record_tile(result)
            merged.merge(shard)
        for name in GRID_NAMES:
            assert merged.grid(name) == serial.grid(name), name


class TestRoundTrip:
    def test_as_dict_from_dict_round_trips(self):
        profiler = TileProfiler()
        profiler.begin_frame(small_config())
        profiler.record_tile(FakeResult(1), replayed=True,
                             energy_model=FakeEnergyModel())
        data = profiler.as_dict()
        rebuilt = TileProfiler.from_dict(data)
        assert rebuilt.as_dict() == data
        assert (rebuilt.tiles_x, rebuilt.tiles_y) == (4, 2)

    def test_as_dict_has_every_grid(self):
        profiler = TileProfiler()
        profiler.begin_frame(small_config())
        data = profiler.as_dict()
        assert set(data) == {"tiles_x", "tiles_y", "frames", *GRID_NAMES}

    def test_from_dict_rejects_short_grid(self):
        profiler = TileProfiler()
        profiler.begin_frame(small_config())
        data = profiler.as_dict()
        data["cycles"] = [1.0]
        with pytest.raises(ValueError, match="cycles"):
            TileProfiler.from_dict(data)

    def test_from_dict_of_empty_profiler(self):
        rebuilt = TileProfiler.from_dict(TileProfiler().as_dict())
        assert rebuilt.tile_count == 0
        assert rebuilt.frames == 0
