"""OpenMetrics exposition: renderer, strict validator, round-trip parse."""

import pytest

from repro.observability.openmetrics import (
    MetricFamily,
    Sample,
    metric_name_of,
    parse_openmetrics,
    render_families,
    validate_openmetrics,
)


def render_one(family):
    return render_families([family])


class TestMetricNameOf:
    def test_maps_registry_names(self):
        assert (
            metric_name_of("gpu.rbcd.zeb_insertions")
            == "repro_gpu_rbcd_zeb_insertions"
        )
        assert metric_name_of("energy.total_j") == "repro_energy_total_j"

    def test_custom_and_empty_prefix(self):
        assert metric_name_of("a.b", prefix="x") == "x_a_b"
        assert metric_name_of("a.b", prefix="") == "a_b"

    def test_rejects_unsalvageable_names(self):
        with pytest.raises(ValueError):
            metric_name_of("", prefix="")


class TestRenderFamilies:
    def test_counter_gets_total_suffix_and_eof(self):
        text = render_one(
            MetricFamily("repro_frames", "counter", help="Frames.")
            .add(3, suffix="_total")
        )
        assert text.splitlines() == [
            "# HELP repro_frames Frames.",
            "# TYPE repro_frames counter",
            "repro_frames_total 3",
            "# EOF",
        ]
        assert text.endswith("# EOF\n")

    def test_gauge_labels_are_sorted_and_escaped(self):
        text = render_one(
            MetricFamily("repro_g", "gauge")
            .add(1.5, zeta="z", alpha='quo"te\nnl\\bs')
        )
        line = text.splitlines()[1]
        assert line == (
            'repro_g{alpha="quo\\"te\\nnl\\\\bs",zeta="z"} 1.5'
        )

    def test_integral_floats_render_bare(self):
        text = render_one(MetricFamily("repro_g", "gauge").add(7.0))
        assert "repro_g 7" in text.splitlines()

    def test_rejects_wrong_suffix_for_type(self):
        with pytest.raises(ValueError):
            render_one(MetricFamily("repro_g", "gauge").add(1, suffix="_total"))
        with pytest.raises(ValueError):
            render_one(MetricFamily("repro_c", "counter").add(1))

    def test_rejects_invalid_names_types_and_values(self):
        with pytest.raises(ValueError):
            render_one(MetricFamily("bad-name", "gauge"))
        with pytest.raises(ValueError):
            render_one(MetricFamily("repro_h", "histogram"))
        with pytest.raises(ValueError):
            render_one(MetricFamily("repro_g", "gauge").add(float("nan")))
        with pytest.raises(TypeError):
            render_one(MetricFamily("repro_g", "gauge").add(True))
        with pytest.raises(ValueError):
            render_one(MetricFamily("repro_g", "gauge").add(1, **{"0bad": "v"}))

    def test_rejects_duplicate_families(self):
        with pytest.raises(ValueError):
            render_families([
                MetricFamily("repro_g", "gauge").add(1),
                MetricFamily("repro_g", "gauge").add(2),
            ])

    def test_summary_family(self):
        text = render_one(
            MetricFamily("repro_lat", "summary", help="Latency.")
            .add(0.25, quantile="0.95")
            .add(10, suffix="_count")
            .add(1.5, suffix="_sum")
        )
        assert 'repro_lat{quantile="0.95"} 0.25' in text
        assert "repro_lat_count 10" in text
        assert "repro_lat_sum 1.5" in text


class TestRoundTrip:
    def build_exposition(self):
        return render_families([
            MetricFamily("repro_frames", "counter", help="Frames seen.")
            .add(12, suffix="_total"),
            MetricFamily("repro_health", "gauge").add(1),
            MetricFamily("repro_window", "gauge", help='Key "metrics".')
            .add(0.25, metric="a.b")
            .add(3, metric="c\nd"),
            MetricFamily("repro_lat", "summary")
            .add(0.001, quantile="0.5")
            .add(5, suffix="_count")
            .add(0.02, suffix="_sum"),
        ])

    def test_parse_recovers_families_and_values(self):
        families = parse_openmetrics(self.build_exposition())
        assert families["repro_frames"]["type"] == "counter"
        assert families["repro_frames"]["help"] == "Frames seen."
        assert families["repro_frames"]["samples"] == [
            ("repro_frames_total", {}, 12.0)
        ]
        window = families["repro_window"]["samples"]
        assert ("repro_window", {"metric": "a.b"}, 0.25) in window
        assert ("repro_window", {"metric": "c\nd"}, 3.0) in window
        lat = families["repro_lat"]["samples"]
        assert ("repro_lat", {"quantile": "0.5"}, 0.001) in lat

    def test_validate_counts_samples(self):
        assert validate_openmetrics(self.build_exposition()) == 7


class TestValidatorRejections:
    GOOD = (
        "# TYPE repro_g gauge\n"
        "repro_g 1\n"
        "# EOF\n"
    )

    def test_accepts_minimal_exposition(self):
        assert validate_openmetrics(self.GOOD) == 1

    @pytest.mark.parametrize("mutation,description", [
        (lambda t: t.replace("# EOF\n", ""), "missing EOF"),
        (lambda t: t.replace("repro_g 1\n", "repro_g 1\n\n"), "blank line"),
        (lambda t: t.replace("gauge", "gaugex"), "unknown type"),
        (lambda t: t.replace("repro_g 1", "repro_g one"), "bad value"),
        (lambda t: t.replace("repro_g 1", "repro_g NaN"), "non-finite"),
        (lambda t: t.replace("repro_g 1", "repro_g_total 1"),
         "suffix invalid for gauge"),
        (lambda t: "repro_orphan 1\n" + t, "sample before TYPE"),
        (lambda t: "# TYPE repro_g gauge\n" + t, "duplicate TYPE"),
        (lambda t: t.replace("repro_g 1", 'repro_g{l="x} 1'),
         "unterminated label value"),
        (lambda t: t.replace("repro_g 1", 'repro_g{l="\\q"} 1'),
         "invalid escape"),
        (lambda t: t.replace("repro_g 1", 'repro_g{0l="x"} 1'),
         "bad label name"),
        (lambda t: t.replace("repro_g 1", 'repro_g{l="x"b="y"} 1'),
         "missing comma"),
        (lambda t: t + "# TYPE late gauge\n",
         "content after EOF"),
    ])
    def test_rejects_mutations(self, mutation, description):
        mutated = mutation(self.GOOD)
        with pytest.raises(ValueError):
            validate_openmetrics(mutated)

    def test_rejects_metadata_after_samples(self):
        text = (
            "# TYPE repro_g gauge\n"
            "repro_g 1\n"
            "# HELP repro_g late help\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="after its samples"):
            validate_openmetrics(text)

    def test_rejects_noncontiguous_family_samples(self):
        text = (
            "# TYPE repro_a gauge\n"
            "# TYPE repro_b gauge\n"
            "repro_a 1\n"
            "repro_b 2\n"
            "repro_a 3\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="not contiguous"):
            validate_openmetrics(text)

    def test_rejects_bare_summary_sample_without_quantile(self):
        text = (
            "# TYPE repro_s summary\n"
            "repro_s 1\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="quantile"):
            validate_openmetrics(text)

    def test_rejects_help_without_type(self):
        text = (
            "# HELP repro_g about\n"
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="no TYPE"):
            validate_openmetrics(text)


class TestLabeledSeries:
    """Tenant-labelled exposition: the serving frontend's contract."""

    def test_add_validates_label_names_eagerly(self):
        family = MetricFamily("repro_g", "gauge")
        with pytest.raises(ValueError, match="invalid label name"):
            family.add(1, **{"0tenant": "a"})
        assert family.samples == []  # the bad sample never landed

    def test_same_name_different_labels_round_trips(self):
        text = render_families([
            MetricFamily("repro_tenant_frames", "counter")
            .add(3, suffix="_total", tenant="alice")
            .add(5, suffix="_total", tenant="bob"),
        ])
        families = parse_openmetrics(text)
        samples = families["repro_tenant_frames"]["samples"]
        assert ("repro_tenant_frames_total", {"tenant": "alice"}, 3.0) in samples
        assert ("repro_tenant_frames_total", {"tenant": "bob"}, 5.0) in samples
        assert validate_openmetrics(text) == 2

    def test_label_values_escape_round_trip(self):
        tricky = 'quo"te\nnew\\slash'
        text = render_families([
            MetricFamily("repro_g", "gauge").add(1, tenant=tricky),
        ])
        samples = parse_openmetrics(text)["repro_g"]["samples"]
        assert samples == [("repro_g", {"tenant": tricky}, 1.0)]

    def test_render_rejects_duplicate_label_names_in_one_sample(self):
        family = MetricFamily("repro_g", "gauge")
        # MetricFamily.add cannot produce this (kwargs dedupe), so a
        # hand-built Sample models a buggy producer.
        family.samples.append(
            Sample(value=1, labels=(("tenant", "a"), ("tenant", "b")))
        )
        with pytest.raises(ValueError, match="duplicate label name"):
            render_families([family])

    def test_render_rejects_duplicate_series(self):
        with pytest.raises(ValueError, match="duplicate series"):
            render_families([
                MetricFamily("repro_g", "gauge")
                .add(1, tenant="a")
                .add(2, tenant="a"),
            ])
        # ...even when the duplicate is the bare unlabelled series.
        with pytest.raises(ValueError, match="duplicate series"):
            render_families([
                MetricFamily("repro_g", "gauge").add(1).add(2),
            ])

    def test_distinct_suffixes_are_distinct_series(self):
        text = render_families([
            MetricFamily("repro_lat", "summary")
            .add(0.5, quantile="0.5")
            .add(0.9, quantile="0.95")
            .add(2, suffix="_count")
            .add(1.0, suffix="_sum"),
        ])
        assert validate_openmetrics(text) == 4

    def test_parser_rejects_duplicate_label_names(self):
        text = (
            "# TYPE repro_g gauge\n"
            'repro_g{tenant="a",tenant="b"} 1\n'
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="duplicate label name"):
            validate_openmetrics(text)

    def test_parser_rejects_duplicate_series(self):
        text = (
            "# TYPE repro_g gauge\n"
            'repro_g{tenant="a"} 1\n'
            'repro_g{tenant="a"} 2\n'
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="duplicate series"):
            validate_openmetrics(text)

    def test_parser_accepts_label_order_as_identity(self):
        # {a=,b=} and {b=,a=} are the SAME series: order must not
        # smuggle a duplicate past the validator.
        text = (
            "# TYPE repro_g gauge\n"
            'repro_g{a="1",b="2"} 1\n'
            'repro_g{b="2",a="1"} 2\n'
            "# EOF\n"
        )
        with pytest.raises(ValueError, match="duplicate series"):
            validate_openmetrics(text)
