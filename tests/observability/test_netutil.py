"""Port-file handoff: atomicity under a concurrently polling reader."""

import threading

import pytest

from repro.observability.netutil import (
    atomic_write_text,
    linger,
    read_port_file,
    write_port_file,
)


class TestAtomicWriteText:
    def test_writes_and_returns_target(self, tmp_path):
        path = tmp_path / "doc.json"
        assert atomic_write_text(path, "{}\n") == path
        assert path.read_text() == "{}\n"

    def test_overwrites_atomically_without_temp_residue(self, tmp_path):
        path = tmp_path / "doc.json"
        atomic_write_text(path, "first\n")
        atomic_write_text(path, "second\n")
        assert path.read_text() == "second\n"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_accepts_string_paths(self, tmp_path):
        target = atomic_write_text(str(tmp_path / "s.txt"), "x")
        assert target.read_text() == "x"


class TestWritePortFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "port"
        written = write_port_file(path, 43815)
        assert written == path
        assert path.read_text() == "43815\n"
        assert read_port_file(path) == 43815

    def test_rejects_non_ports(self, tmp_path):
        path = tmp_path / "port"
        for bad in (0, -1, 1.5, True, "80"):
            with pytest.raises(ValueError):
                write_port_file(path, bad)

    def test_overwrites_previous_port(self, tmp_path):
        path = tmp_path / "port"
        write_port_file(path, 1000)
        write_port_file(path, 2000)
        assert read_port_file(path) == 2000

    def test_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "port"
        write_port_file(path, 5000)
        assert [p.name for p in tmp_path.iterdir()] == ["port"]


class TestReadPortFile:
    def test_missing_file_without_timeout_raises(self, tmp_path):
        with pytest.raises(TimeoutError):
            read_port_file(tmp_path / "absent")

    def test_missing_file_with_timeout_raises_after_deadline(self, tmp_path):
        with pytest.raises(TimeoutError):
            read_port_file(tmp_path / "absent", timeout_s=0.05, poll_s=0.01)

    def test_garbage_contents_raise(self, tmp_path):
        path = tmp_path / "port"
        for garbage in ("", "nope\n", "-1\n", "0\n", "12.5\n"):
            path.write_text(garbage)
            with pytest.raises(ValueError):
                read_port_file(path)

    def test_polls_until_writer_lands(self, tmp_path):
        path = tmp_path / "port"
        timer = threading.Timer(0.05, write_port_file, args=(path, 7777))
        timer.start()
        try:
            assert read_port_file(path, timeout_s=5.0, poll_s=0.005) == 7777
        finally:
            timer.cancel()


class TestPortFileRace:
    def test_reader_never_observes_partial_write(self, tmp_path):
        """The race the helper exists to close.

        A naive ``open(path, "w"); write(port)`` creates the path
        *empty* before the port lands, so a poller can read garbage.
        :func:`write_port_file` goes through a same-directory temp file
        plus an atomic rename: hammer the handoff from a writer thread
        while a reader polls, and assert the reader only ever sees a
        complete port number — never an empty or truncated file.
        """
        path = tmp_path / "port"
        rounds = 200
        failures = []
        start = threading.Barrier(2)

        def writer():
            start.wait()
            for i in range(rounds):
                write_port_file(path, 10000 + i)

        def reader():
            start.wait()
            seen = 0
            while seen < rounds // 2:
                try:
                    port = read_port_file(path, timeout_s=5.0, poll_s=0.0)
                except ValueError as exc:
                    failures.append(str(exc))
                    return
                if not (10000 <= port < 10000 + rounds):
                    failures.append(f"impossible port {port}")
                    return
                seen += 1

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert failures == []


class TestLinger:
    def test_nonpositive_returns_immediately(self):
        linger(0.0)
        linger(-1.0)

    def test_sleeps_roughly_the_requested_time(self):
        import time

        t0 = time.perf_counter()
        linger(0.05)
        assert time.perf_counter() - t0 >= 0.04
