"""Tracer unit tests: nesting, clocks, the null tracer's contract."""

import pytest

from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
)


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestSpanTree:
    def test_nesting_records_parent_and_depth(self, tracer):
        with tracer.span("frame") as frame:
            with tracer.span("geometry") as geometry:
                with tracer.span("geometry.shade") as shade:
                    pass
            with tracer.span("raster"):
                pass
        assert [s.name for s in tracer.spans] == [
            "frame", "geometry", "geometry.shade", "raster",
        ]
        assert frame.parent == -1 and frame.depth == 0
        assert geometry.parent == frame.index and geometry.depth == 1
        assert shade.parent == geometry.index and shade.depth == 2
        assert [s.name for s in tracer.children(frame)] == ["geometry", "raster"]
        assert tracer.roots() == [frame]

    def test_wall_time_from_clock(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.tick(2.0)
            with tracer.span("inner") as inner:
                clock.tick(3.0)
        assert inner.wall_s == pytest.approx(3.0)
        assert outer.wall_s == pytest.approx(5.0)
        assert outer.t_start == pytest.approx(0.0)
        assert inner.t_start == pytest.approx(2.0)

    def test_open_span_reads_zero_wall(self, tracer, clock):
        sp = tracer.start("open")
        clock.tick(4.0)
        assert not sp.closed
        assert sp.wall_s == 0.0
        tracer.end(sp)
        assert sp.closed and sp.wall_s == pytest.approx(4.0)

    def test_out_of_order_close_raises(self, tracer):
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            tracer.end(outer)

    def test_cycles_attribution(self, tracer):
        with tracer.span("stage") as span:
            span.add_cycles(10)
            tracer.add_cycles(5)       # lands on the innermost open span
        span.cycles = 99.0             # post-close assignment is allowed
        assert span.cycles == 99.0
        assert tracer.total_cycles("stage") == 99.0

    def test_annotate_and_start_attrs(self, tracer):
        with tracer.span("stage", tile=7) as span:
            span.annotate(fragments=100)
        assert span.attrs == {"tile": 7, "fragments": 100}

    def test_reset_requires_closed_stack(self, tracer, clock):
        tracer.start("open")
        with pytest.raises(RuntimeError, match="open spans"):
            tracer.reset()

    def test_reset_rezeros_epoch(self, tracer, clock):
        with tracer.span("a"):
            clock.tick(5.0)
        tracer.reset()
        assert tracer.spans == []
        with tracer.span("b") as b:
            pass
        assert b.t_start == pytest.approx(0.0)

    def test_queries(self, tracer):
        with tracer.span("frame"):
            with tracer.span("tile", category="tile"):
                pass
            with tracer.span("tile", category="tile"):
                pass
        assert len(tracer.by_name("tile")) == 2
        assert tracer.by_name("nothing") == []
        assert tracer.current is None


class TestNullTracer:
    def test_ensure_tracer_defaults_to_null(self):
        assert ensure_tracer(None) is NULL_TRACER
        real = Tracer()
        assert ensure_tracer(real) is real
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled

    def test_null_span_absorbs_all_mutation(self):
        with NULL_TRACER.span("anything", tile=3) as span:
            span.cycles = 123.0      # must not stick
            span.add_cycles(5)
            span.annotate(x=1)
        assert span.cycles == 0.0
        assert span.attrs == {}
        assert NULL_TRACER.spans == []

    def test_null_tracer_structural_compat(self):
        sp = NULL_TRACER.start("x")
        NULL_TRACER.end(sp)
        NULL_TRACER.add_cycles(3)
        NULL_TRACER.reset()
        assert NULL_TRACER.current is None
        assert NULL_TRACER.by_name("x") == []
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.total_wall_s("x") == 0.0
        assert NULL_TRACER.total_cycles("x") == 0.0

    def test_real_span_dataclass_defaults(self):
        sp = Span(name="s")
        assert not sp.closed
        assert sp.wall_s == 0.0
        sp.add_cycles(2.5)
        assert sp.cycles == 2.5
