"""Tracer unit tests: nesting, clocks, the null tracer's contract."""

import pytest

from repro.observability.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    ensure_tracer,
)


class FakeClock:
    """Deterministic clock: advances only when told to."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def tick(self, dt=1.0):
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestSpanTree:
    def test_nesting_records_parent_and_depth(self, tracer):
        with tracer.span("frame") as frame:
            with tracer.span("geometry") as geometry:
                with tracer.span("geometry.shade") as shade:
                    pass
            with tracer.span("raster"):
                pass
        assert [s.name for s in tracer.spans] == [
            "frame", "geometry", "geometry.shade", "raster",
        ]
        assert frame.parent == -1 and frame.depth == 0
        assert geometry.parent == frame.index and geometry.depth == 1
        assert shade.parent == geometry.index and shade.depth == 2
        assert [s.name for s in tracer.children(frame)] == ["geometry", "raster"]
        assert tracer.roots() == [frame]

    def test_wall_time_from_clock(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.tick(2.0)
            with tracer.span("inner") as inner:
                clock.tick(3.0)
        assert inner.wall_s == pytest.approx(3.0)
        assert outer.wall_s == pytest.approx(5.0)
        assert outer.t_start == pytest.approx(0.0)
        assert inner.t_start == pytest.approx(2.0)

    def test_open_span_reads_zero_wall(self, tracer, clock):
        sp = tracer.start("open")
        clock.tick(4.0)
        assert not sp.closed
        assert sp.wall_s == 0.0
        tracer.end(sp)
        assert sp.closed and sp.wall_s == pytest.approx(4.0)

    def test_out_of_order_close_raises(self, tracer):
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            tracer.end(outer)

    def test_cycles_attribution(self, tracer):
        with tracer.span("stage") as span:
            span.add_cycles(10)
            tracer.add_cycles(5)       # lands on the innermost open span
        span.cycles = 99.0             # post-close assignment is allowed
        assert span.cycles == 99.0
        assert tracer.total_cycles("stage") == 99.0

    def test_annotate_and_start_attrs(self, tracer):
        with tracer.span("stage", tile=7) as span:
            span.annotate(fragments=100)
        assert span.attrs == {"tile": 7, "fragments": 100}

    def test_reset_requires_closed_stack(self, tracer, clock):
        tracer.start("open")
        with pytest.raises(RuntimeError, match="open spans"):
            tracer.reset()

    def test_reset_rezeros_epoch(self, tracer, clock):
        with tracer.span("a"):
            clock.tick(5.0)
        tracer.reset()
        assert tracer.spans == []
        with tracer.span("b") as b:
            pass
        assert b.t_start == pytest.approx(0.0)

    def test_queries(self, tracer):
        with tracer.span("frame"):
            with tracer.span("tile", category="tile"):
                pass
            with tracer.span("tile", category="tile"):
                pass
        assert len(tracer.by_name("tile")) == 2
        assert tracer.by_name("nothing") == []
        assert tracer.current is None


class TestNullTracer:
    def test_ensure_tracer_defaults_to_null(self):
        assert ensure_tracer(None) is NULL_TRACER
        real = Tracer()
        assert ensure_tracer(real) is real
        assert isinstance(NULL_TRACER, NullTracer)
        assert not NULL_TRACER.enabled

    def test_null_span_absorbs_all_mutation(self):
        with NULL_TRACER.span("anything", tile=3) as span:
            span.cycles = 123.0      # must not stick
            span.add_cycles(5)
            span.annotate(x=1)
        assert span.cycles == 0.0
        assert span.attrs == {}
        assert NULL_TRACER.spans == []

    def test_null_tracer_structural_compat(self):
        sp = NULL_TRACER.start("x")
        NULL_TRACER.end(sp)
        NULL_TRACER.add_cycles(3)
        NULL_TRACER.reset()
        assert NULL_TRACER.current is None
        assert NULL_TRACER.by_name("x") == []
        assert NULL_TRACER.roots() == []
        assert NULL_TRACER.total_wall_s("x") == 0.0
        assert NULL_TRACER.total_cycles("x") == 0.0

    def test_real_span_dataclass_defaults(self):
        sp = Span(name="s")
        assert not sp.closed
        assert sp.wall_s == 0.0
        sp.add_cycles(2.5)
        assert sp.cycles == 2.5


class TestContext:
    """Request-scoped attribute stamping (the serving frontend's
    tenant/stream/frame_seq path) and its restoration guarantees."""

    def test_context_stamps_every_span(self, tracer):
        with tracer.context(tenant="t00", frame_seq=3):
            with tracer.span("frame"):
                with tracer.span("rbcd.tile"):
                    pass
        assert all(
            s.attrs["tenant"] == "t00" and s.attrs["frame_seq"] == 3
            for s in tracer.spans
        )

    def test_explicit_span_attrs_win_over_context(self, tracer):
        with tracer.context(tile=0, tenant="t00"):
            with tracer.span("rbcd.tile", tile=7) as sp:
                pass
        assert sp.attrs == {"tile": 7, "tenant": "t00"}

    def test_nested_contexts_layer_and_restore(self, tracer):
        with tracer.context(tenant="outer", stream="s0"):
            with tracer.context(tenant="inner", frame_seq=1):
                with tracer.span("a") as inner:
                    pass
            with tracer.span("b") as outer:
                pass
        with tracer.span("c") as bare:
            pass
        assert inner.attrs == {
            "tenant": "inner", "stream": "s0", "frame_seq": 1,
        }
        assert outer.attrs == {"tenant": "outer", "stream": "s0"}
        assert bare.attrs == {}

    def test_reentrant_context_same_keys(self, tracer):
        with tracer.context(tenant="a"):
            with tracer.context(tenant="b"):
                with tracer.context(tenant="a"):
                    with tracer.span("x") as sp:
                        pass
                with tracer.span("y") as mid:
                    pass
        assert sp.attrs == {"tenant": "a"}
        assert mid.attrs == {"tenant": "b"}

    def test_context_restores_on_exception(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.context(tenant="doomed"):
                raise ValueError("boom")
        with tracer.span("after") as sp:
            pass
        assert sp.attrs == {}

    def test_nested_context_restores_outer_on_exception(self, tracer):
        with tracer.context(tenant="outer"):
            with pytest.raises(RuntimeError, match="inner"):
                with tracer.context(tenant="inner", extra=1):
                    raise RuntimeError("inner boom")
            with tracer.span("recovered") as sp:
                pass
        assert sp.attrs == {"tenant": "outer"}

    def test_context_does_not_mutate_open_spans(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.context(tenant="late"):
                with tracer.span("inner") as inner:
                    pass
        assert outer.attrs == {}
        assert inner.attrs == {"tenant": "late"}

    def test_null_tracer_context_is_inert(self):
        with NULL_TRACER.context(tenant="ignored"):
            with NULL_TRACER.span("x") as sp:
                pass
        assert sp.attrs == {}
        assert NULL_TRACER.spans == []

    def test_null_tracer_context_survives_exception(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.context(tenant="ignored"):
                raise KeyError("k")
        # still usable, still records nothing
        with NULL_TRACER.span("y"):
            pass
        assert NULL_TRACER.spans == []


class TestListeners:
    def test_listener_sees_spans_in_close_order(self, tracer):
        closed = []
        tracer.add_listener(lambda sp: closed.append(sp.name))
        with tracer.span("frame"):
            with tracer.span("geometry"):
                pass
            with tracer.span("raster"):
                pass
        assert closed == ["geometry", "raster", "frame"]

    def test_listener_sees_closed_span_with_attrs(self, tracer, clock):
        seen = []
        tracer.add_listener(seen.append)
        with tracer.context(tenant="t"):
            with tracer.span("frame"):
                clock.tick(2.0)
        (sp,) = seen
        assert sp.closed and sp.wall_s == pytest.approx(2.0)
        assert sp.attrs == {"tenant": "t"}

    def test_keep_spans_false_clears_per_root(self, clock):
        tracer = Tracer(clock=clock, keep_spans=False)
        seen = []
        tracer.add_listener(lambda sp: seen.append(sp.name))
        with tracer.span("frame"):
            with tracer.span("rbcd"):
                pass
        assert tracer.spans == []          # cleared once the root closed
        with tracer.span("frame") as again:
            pass
        assert again.index == 0            # indices restart per root
        assert tracer.spans == []
        assert seen == ["rbcd", "frame", "frame"]

    def test_null_tracer_add_listener_is_noop(self):
        NULL_TRACER.add_listener(lambda sp: 1 / 0)
        with NULL_TRACER.span("x"):
            pass
