"""Public-API audit: ``__all__`` contracts of repro and repro.observability.

Guards the import surface the docs advertise: every name in ``__all__``
resolves, key telemetry names are importable from the package top
level, and the submodule ``__all__`` lists stay in sync with what the
package re-exports.
"""

import importlib

import pytest

import repro
import repro.observability as obs

SUBMODULES = (
    "repro.observability.counters",
    "repro.observability.tracer",
    "repro.observability.window",
    "repro.observability.log",
    "repro.observability.openmetrics",
    "repro.observability.live",
    "repro.observability.netutil",
    "repro.observability.flightrecorder",
)

SERVE_SUBMODULES = (
    "repro.serve.service",
    "repro.serve.http",
)


class TestObservabilityExports:
    def test_all_names_resolve(self):
        missing = [name for name in obs.__all__ if not hasattr(obs, name)]
        assert missing == [], f"__all__ names missing attributes: {missing}"

    def test_no_duplicate_all_entries(self):
        assert len(obs.__all__) == len(set(obs.__all__))

    def test_tracer_names_importable_from_top_level(self):
        from repro.observability import NULL_TRACER, NullTracer, Tracer

        assert isinstance(NULL_TRACER, NullTracer)
        assert Tracer is not NullTracer

    def test_live_telemetry_names_importable_from_top_level(self):
        from repro.observability import (
            Alert,
            Ewma,
            JsonFormatter,
            LiveMonitor,
            MetricFamily,
            MetricSnapshot,
            MetricsServer,
            QuantileSketch,
            SlidingWindow,
            WatchdogRule,
            WindowAggregate,
            configure_json_logging,
            default_rules,
            get_logger,
            log_event,
            metric_name_of,
            parse_openmetrics,
            render_families,
            validate_openmetrics,
        )

        for name in (
            Alert, Ewma, JsonFormatter, LiveMonitor, MetricFamily,
            MetricSnapshot, MetricsServer, QuantileSketch, SlidingWindow,
            WatchdogRule, WindowAggregate, configure_json_logging,
            default_rules, get_logger, log_event, metric_name_of,
            parse_openmetrics, render_families, validate_openmetrics,
        ):
            assert name is not None

    @pytest.mark.parametrize("module_name", SUBMODULES)
    def test_submodule_all_is_reexported_by_package(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} missing __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"
            # Everything a telemetry submodule declares public is
            # reachable from the package, except deliberately
            # module-scoped constants.
            if module_name in (
                "repro.observability.window",
                "repro.observability.log",
                "repro.observability.openmetrics",
                "repro.observability.netutil",
                "repro.observability.flightrecorder",
            ):
                assert hasattr(obs, name), (
                    f"{module_name}.{name} not re-exported"
                )

    def test_flightrecorder_names_importable_from_top_level(self):
        from repro.observability import (
            FlightRecorder,
            RingBuffer,
            config_fingerprint,
            deterministic_events,
            validate_postmortem_document,
            verify_alert_record,
            window_values_from_snapshots,
        )

        for name in (
            FlightRecorder, RingBuffer, config_fingerprint,
            deterministic_events, validate_postmortem_document,
            verify_alert_record, window_values_from_snapshots,
        ):
            assert name is not None

    def test_forensics_stays_module_scoped(self):
        # repro.observability.forensics sits above the GPU pipeline; the
        # package __init__ must not import it (cycle), so its names are
        # intentionally absent from the package namespace.
        assert not hasattr(obs, "DivergenceReport")


class TestServeExports:
    def test_all_names_resolve(self):
        import repro.serve as serve

        missing = [
            name for name in serve.__all__ if not hasattr(serve, name)
        ]
        assert missing == [], f"__all__ names missing attributes: {missing}"
        assert len(serve.__all__) == len(set(serve.__all__))

    def test_service_names_importable_from_package(self):
        from repro.serve import (
            AdmissionError,
            CollisionService,
            ServedFrame,
            ServiceMetricsServer,
            TenantSession,
        )

        for name in (
            AdmissionError, CollisionService, ServedFrame,
            ServiceMetricsServer, TenantSession,
        ):
            assert name is not None

    @pytest.mark.parametrize("module_name", SERVE_SUBMODULES)
    def test_submodule_all_is_reexported_by_package(self, module_name):
        import repro.serve as serve

        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} missing __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"
            assert hasattr(serve, name), (
                f"{module_name}.{name} not re-exported by repro.serve"
            )

    def test_loadgen_public_surface(self):
        from repro.experiments import loadgen

        for name in loadgen.__all__:
            assert hasattr(loadgen, name), f"loadgen.{name} missing"


class TestTopLevelExports:
    def test_all_names_resolve(self):
        missing = [name for name in repro.__all__ if not hasattr(repro, name)]
        assert missing == []

    def test_observability_importable_as_attribute(self):
        from repro import observability

        assert observability is obs
        assert "observability" in repro.__all__

    def test_core_api_still_present(self):
        assert repro.RBCDSystem is not None
        assert repro.detect_collisions is not None
        assert isinstance(repro.__version__, str)
