"""LiveMonitor: snapshots, windows, watchdogs, exposition, HTTP server.

Frames here are synthetic :class:`GPUStats` / :class:`FrameEnergyReport`
objects so every derived value is known in closed form; the end-to-end
tests over real rendered frames live in
``tests/experiments/test_monitor.py`` and
``tests/integration/test_live_differential.py``.
"""

import json
import threading

import pytest

from repro.energy.gpu_power import GPUEnergyBreakdown
from repro.energy.report import FrameEnergyReport
from repro.gpu.stats import GPUStats
from repro.observability.live import (
    PAPER_ACTIVITY_ENVELOPE,
    Alert,
    LiveMonitor,
    MetricsServer,
    WatchdogRule,
    aggregate_window_values,
    default_rules,
)
from repro.observability.openmetrics import parse_openmetrics, validate_openmetrics


def make_stats(
    gpu_cycles=1000.0,
    rbcd_cycles=5.0,
    zeb_insertions=100,
    zeb_overflow_events=0,
    zeb_lists_analyzed=50,
    ff_stack_overflows=0,
    collision_pairs_emitted=3,
) -> GPUStats:
    return GPUStats(
        gpu_cycles=gpu_cycles,
        rbcd_cycles=rbcd_cycles,
        zeb_insertions=zeb_insertions,
        zeb_overflow_events=zeb_overflow_events,
        zeb_lists_analyzed=zeb_lists_analyzed,
        ff_stack_overflows=ff_stack_overflows,
        collision_pairs_emitted=collision_pairs_emitted,
    )


def make_energy(total_j=0.001, delay_s=0.002) -> FrameEnergyReport:
    return FrameEnergyReport(
        gpu=GPUEnergyBreakdown(static_j=total_j), delay_s=delay_s
    )


class TestWatchdogRule:
    def test_validates_op_and_min_frames(self):
        with pytest.raises(ValueError):
            WatchdogRule("r", "m", "between", 1.0)
        with pytest.raises(ValueError):
            WatchdogRule("r", "m", "gt", 1.0, min_frames=0)

    def test_not_breached_before_min_frames_or_without_metric(self):
        rule = WatchdogRule("r", "m", "gt", 1.0, min_frames=3)
        assert not rule.breached({"m": 5.0}, frames=2)
        assert rule.breached({"m": 5.0}, frames=3)
        assert not rule.breached({}, frames=10)

    @pytest.mark.parametrize("op,value,trips", [
        ("gt", 2.0, True), ("gt", 1.0, False),
        ("ge", 1.0, True), ("ge", 0.9, False),
        ("lt", 0.5, True), ("lt", 1.0, False),
        ("le", 1.0, True), ("le", 1.1, False),
    ])
    def test_operators(self, op, value, trips):
        rule = WatchdogRule("r", "m", op, 1.0)
        assert rule.breached({"m": value}, frames=1) is trips


class TestDefaultRules:
    def test_stock_set_guards_the_paper_envelope(self):
        rules = {r.name: r for r in default_rules()}
        assert rules["rbcd-activity-envelope"].threshold == (
            PAPER_ACTIVITY_ENVELOPE
        )
        assert "zeb-overflow-rate" in rules
        assert "ffstack-overflow-rate" in rules
        assert "energy-budget" in rules
        assert "frame-latency-slo" not in rules  # opt-in

    def test_none_drops_a_rule_and_latency_is_opt_in(self):
        names = {r.name for r in default_rules(
            max_activity_ratio=None, max_frame_ms=50.0,
        )}
        assert "rbcd-activity-envelope" not in names
        assert "frame-latency-slo" in names


class TestLiveMonitorIngestion:
    def test_snapshot_fields_are_closed_form(self):
        monitor = LiveMonitor(window=8)
        snap = monitor.observe_frame(
            make_stats(gpu_cycles=1000.0, rbcd_cycles=5.0,
                       zeb_insertions=100, zeb_overflow_events=4,
                       zeb_lists_analyzed=50, ff_stack_overflows=1),
            make_energy(total_j=0.001, delay_s=0.002),
            wall_s=0.25,
        )
        assert snap.frame == 0
        assert snap.derived["rbcd.activity_ratio"] == pytest.approx(0.005)
        assert snap.derived["zeb.overflow_rate"] == pytest.approx(0.04)
        assert snap.derived["ffstack.overflow_rate"] == pytest.approx(0.02)
        assert snap.derived["energy.joules"] == pytest.approx(0.001)
        assert snap.derived["frame.sim_ms"] == pytest.approx(2.0)
        assert snap.counters["gpu.rbcd.zeb_insertions"] == 100
        assert snap.counters["energy.total_j"] == pytest.approx(0.001)
        assert monitor.frames == 1
        assert monitor.latest == snap

    def test_zero_denominators_yield_zero_rates(self):
        monitor = LiveMonitor(window=4, rules=[])
        snap = monitor.observe_frame(
            GPUStats(), FrameEnergyReport(), wall_s=0.0
        )
        assert snap.derived["rbcd.activity_ratio"] == 0.0
        assert snap.derived["zeb.overflow_rate"] == 0.0
        assert snap.derived["ffstack.overflow_rate"] == 0.0

    def test_deterministic_fingerprint_excludes_wall_clock(self):
        monitor_a = LiveMonitor(window=4, rules=[])
        monitor_b = LiveMonitor(window=4, rules=[])
        snap_a = monitor_a.observe_frame(make_stats(), make_energy(), wall_s=1.0)
        snap_b = monitor_b.observe_frame(make_stats(), make_energy(), wall_s=9.0)
        assert snap_a.deterministic_fingerprint() == (
            snap_b.deterministic_fingerprint()
        )
        assert snap_a.as_dict() != snap_b.as_dict()

    def test_window_values_are_ratios_of_window_sums(self):
        monitor = LiveMonitor(window=2, rules=[])
        monitor.observe_frame(
            make_stats(gpu_cycles=1000.0, rbcd_cycles=100.0), make_energy()
        )
        monitor.observe_frame(
            make_stats(gpu_cycles=3000.0, rbcd_cycles=0.0), make_energy()
        )
        values = monitor.window_values()
        assert values["window.frames"] == 2.0
        # (100 + 0) / (1000 + 3000), not the mean of per-frame ratios.
        assert values["window.rbcd.activity_ratio"] == pytest.approx(0.025)

    def test_window_eviction_forgets_old_frames(self):
        monitor = LiveMonitor(window=2, rules=[])
        monitor.observe_frame(
            make_stats(zeb_insertions=10, zeb_overflow_events=10), make_energy()
        )
        for _ in range(2):
            monitor.observe_frame(
                make_stats(zeb_insertions=10, zeb_overflow_events=0),
                make_energy(),
            )
        values = monitor.window_values()
        assert values["window.zeb.overflow_rate"] == 0.0

    def test_totals_accumulate_registry_counters(self):
        monitor = LiveMonitor(window=4, rules=[])
        monitor.observe_frame(make_stats(zeb_insertions=10), make_energy())
        monitor.observe_frame(make_stats(zeb_insertions=5), make_energy())
        totals = monitor.totals()
        assert totals["gpu.rbcd.zeb_insertions"] == 15
        assert totals["energy.total_j"] == pytest.approx(0.002)

    def test_quantiles_and_ewma_appear_in_window_values(self):
        monitor = LiveMonitor(window=16, rules=[])
        for wall_ms in (1.0, 2.0, 3.0, 10.0):
            monitor.observe_frame(
                make_stats(), make_energy(), wall_s=wall_ms / 1e3
            )
        values = monitor.window_values()
        assert values["quantile.frame.wall_ms.p50"] == pytest.approx(2.0, rel=0.05)
        assert values["quantile.frame.wall_ms.p99"] == pytest.approx(10.0, rel=0.05)
        assert values["ewma.frame.wall_ms"] > 0.0

    def test_duplicate_rule_names_rejected(self):
        rule = WatchdogRule("dup", "m", "gt", 1.0)
        with pytest.raises(ValueError):
            LiveMonitor(rules=[rule, rule])


class TestListeners:
    """The flight recorder's feed: snapshot/alert/recovery events,
    dispatched after the monitor lock is released."""

    hot_rule = [
        WatchdogRule("hot", "window.rbcd.activity_ratio", "gt", 0.01)
    ]

    def test_snapshot_event_per_frame_with_payload(self):
        monitor = LiveMonitor(window=4)
        events = []
        monitor.add_listener(lambda kind, payload: events.append((kind, payload)))
        snap = monitor.observe_frame(make_stats(), make_energy())
        assert events == [("snapshot", snap)]

    def test_alert_and_recovery_events_are_edge_triggered(self):
        monitor = LiveMonitor(window=1, rules=self.hot_rule)
        events = []
        monitor.add_listener(lambda kind, payload: events.append((kind, payload)))
        hot = make_stats(gpu_cycles=1000.0, rbcd_cycles=100.0)
        cold = make_stats(gpu_cycles=1000.0, rbcd_cycles=0.0)
        monitor.observe_frame(cold, make_energy())
        monitor.observe_frame(hot, make_energy())
        monitor.observe_frame(hot, make_energy())  # still breached: no event
        monitor.observe_frame(cold, make_energy())
        kinds = [kind for kind, _ in events]
        assert kinds == [
            "snapshot", "snapshot", "alert", "snapshot", "snapshot",
            "recovery",
        ]
        alert = next(p for k, p in events if k == "alert")
        assert isinstance(alert, Alert) and alert.rule == "hot"
        recovery = next(p for k, p in events if k == "recovery")
        assert recovery == {
            "rule": "hot",
            "metric": "window.rbcd.activity_ratio",
            "frame": 3,
        }

    def test_snapshot_event_precedes_its_alert(self):
        monitor = LiveMonitor(window=1, rules=self.hot_rule)
        events = []
        monitor.add_listener(lambda kind, _: events.append(kind))
        hot = make_stats(gpu_cycles=1000.0, rbcd_cycles=100.0)
        monitor.observe_frame(hot, make_energy())
        assert events == ["snapshot", "alert"]

    def test_listener_may_reenter_monitor_readers(self):
        # Events are dispatched outside the monitor lock, so a listener
        # can call totals()/window_values() without deadlocking.
        monitor = LiveMonitor(window=4)
        seen = []
        monitor.add_listener(
            lambda kind, _: seen.append(
                monitor.totals()["gpu.rbcd.zeb_insertions"]
            )
        )
        monitor.observe_frame(make_stats(), make_energy())
        monitor.observe_frame(make_stats(), make_energy())
        assert seen == [100, 200]

    def test_aggregate_window_values_backs_window_values(self):
        monitor = LiveMonitor(window=4)
        for _ in range(3):
            monitor.observe_frame(make_stats(), make_energy(), wall_s=0.01)
        assert monitor.window_values() == aggregate_window_values(
            monitor._windows, monitor._ewma, monitor._sketches
        )


class TestWatchdogBehavior:
    overflow_every_frame = [
        WatchdogRule("always-overflow", "window.zeb.overflow_rate", "ge", 0.0)
    ]

    def test_edge_triggered_alert_and_recovery(self):
        rules = [
            WatchdogRule("hot", "window.rbcd.activity_ratio", "gt", 0.01)
        ]
        monitor = LiveMonitor(window=1, rules=rules)
        hot = make_stats(gpu_cycles=1000.0, rbcd_cycles=100.0)
        cold = make_stats(gpu_cycles=1000.0, rbcd_cycles=0.0)

        monitor.observe_frame(cold, make_energy())
        assert monitor.healthy and monitor.alerts == []

        monitor.observe_frame(hot, make_energy())
        assert not monitor.healthy
        assert monitor.active_alerts == ["hot"]
        assert len(monitor.alerts) == 1

        # Still breached: edge-triggered, so no second alert.
        monitor.observe_frame(hot, make_energy())
        assert len(monitor.alerts) == 1

        # Recovery clears the active set but keeps the alert history.
        monitor.observe_frame(cold, make_energy())
        assert monitor.healthy
        assert monitor.active_alerts == []
        assert len(monitor.alerts) == 1

        # A new breach raises a fresh alert.
        monitor.observe_frame(hot, make_energy())
        assert len(monitor.alerts) == 2

    def test_alert_carries_rule_context(self):
        monitor = LiveMonitor(window=4, rules=self.overflow_every_frame)
        monitor.observe_frame(make_stats(), make_energy())
        (alert,) = monitor.alerts
        assert isinstance(alert, Alert)
        assert alert.rule == "always-overflow"
        assert alert.metric == "window.zeb.overflow_rate"
        assert alert.op == "ge" and alert.threshold == 0.0
        assert alert.frame == 0
        assert "always-overflow" in alert.message
        assert alert.as_dict()["message"] == alert.message

    def test_min_frames_defers_breach(self):
        rules = [
            WatchdogRule("warm", "window.zeb.overflow_rate", "ge", 0.0,
                         min_frames=3)
        ]
        monitor = LiveMonitor(window=8, rules=rules)
        monitor.observe_frame(make_stats(), make_energy())
        monitor.observe_frame(make_stats(), make_energy())
        assert monitor.healthy
        monitor.observe_frame(make_stats(), make_energy())
        assert not monitor.healthy

    def test_health_and_snapshot_documents(self):
        monitor = LiveMonitor(window=4, rules=self.overflow_every_frame)
        assert monitor.health_dict()["status"] == "ok"
        monitor.observe_frame(make_stats(), make_energy())
        health = monitor.health_dict()
        assert health["status"] == "failing"
        assert health["active_alerts"] == ["always-overflow"]
        assert health["alerts_total"] == 1

        snapshot = monitor.snapshot_dict()
        assert snapshot["frames"] == 1
        assert snapshot["healthy"] is False
        assert snapshot["alerts"][0]["rule"] == "always-overflow"
        assert snapshot["latest"]["frame"] == 0
        json.dumps(snapshot)  # must be JSON-serializable as-is


class TestOpenMetricsExposition:
    def test_empty_monitor_renders_valid_exposition(self):
        text = LiveMonitor().to_openmetrics()
        assert validate_openmetrics(text) > 0
        families = parse_openmetrics(text)
        assert families["repro_frames_observed"]["samples"] == [
            ("repro_frames_observed_total", {}, 0.0)
        ]
        assert families["repro_health"]["samples"][0][2] == 1.0

    def test_exposition_reflects_stream_state(self):
        monitor = LiveMonitor(
            window=8,
            rules=[WatchdogRule("trip", "window.zeb.overflow_rate", "ge", 0.0)],
        )
        monitor.observe_frame(
            make_stats(zeb_insertions=100), make_energy(), wall_s=0.002
        )
        monitor.observe_frame(
            make_stats(zeb_insertions=50), make_energy(), wall_s=0.002
        )
        families = parse_openmetrics(monitor.to_openmetrics())

        assert families["repro_frames_observed"]["samples"][0][2] == 2.0
        assert families["repro_health"]["samples"][0][2] == 0.0
        assert families["repro_watchdog_alerts"]["samples"][0][2] == 1.0
        breached = families["repro_watchdog_breached"]["samples"]
        assert ("repro_watchdog_breached", {"rule": "trip"}, 1.0) in breached
        # Cumulative registry counters surface with _total samples.
        insertions = families["repro_gpu_rbcd_zeb_insertions"]["samples"]
        assert insertions == [
            ("repro_gpu_rbcd_zeb_insertions_total", {}, 150.0)
        ]
        # Window gauge carries the metric= label per key.
        window = {
            labels["metric"]: value
            for _, labels, value in families["repro_window"]["samples"]
        }
        assert window["window.frames"] == 2.0
        # Latency summaries expose quantiles in seconds plus count/sum.
        lat = families["repro_frame_wall_seconds"]["samples"]
        by_name = {}
        for name, labels, value in lat:
            by_name.setdefault(name, []).append((labels, value))
        assert ({}, 2.0) in by_name["repro_frame_wall_seconds_count"]
        quantiles = {
            labels["quantile"]
            for labels, _ in by_name["repro_frame_wall_seconds"]
        }
        assert quantiles == {"0.5", "0.95", "0.99"}


class TestMetricsServer:
    def fetch(self, url):
        from urllib.error import HTTPError
        from urllib.request import urlopen

        try:
            with urlopen(url, timeout=10) as response:
                return response.status, response.read().decode("utf-8"), \
                    response.headers.get("Content-Type", "")
        except HTTPError as err:
            return err.code, err.read().decode("utf-8"), \
                err.headers.get("Content-Type", "")

    def test_serves_all_endpoints(self):
        monitor = LiveMonitor(window=4, rules=[])
        monitor.observe_frame(make_stats(), make_energy())
        with MetricsServer(monitor) as server:
            assert server.url.startswith("http://127.0.0.1:")

            status, body, ctype = self.fetch(server.url + "/metrics")
            assert status == 200
            assert ctype.startswith("application/openmetrics-text")
            assert validate_openmetrics(body) > 0

            status, body, ctype = self.fetch(server.url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            status, body, _ = self.fetch(server.url + "/snapshot.json")
            assert status == 200
            assert json.loads(body)["frames"] == 1

            status, body, _ = self.fetch(server.url + "/nope")
            assert status == 404
            assert "/metrics" in json.loads(body)["endpoints"]

    def test_healthz_returns_503_when_failing(self):
        monitor = LiveMonitor(
            window=4,
            rules=[WatchdogRule("trip", "window.zeb.overflow_rate", "ge", 0.0)],
        )
        monitor.observe_frame(make_stats(), make_energy())
        assert not monitor.healthy
        with MetricsServer(monitor) as server:
            status, body, _ = self.fetch(server.url + "/healthz")
        assert status == 503
        assert json.loads(body)["status"] == "failing"

    def test_query_strings_are_ignored(self):
        monitor = LiveMonitor(rules=[])
        with MetricsServer(monitor) as server:
            status, _, _ = self.fetch(server.url + "/metrics?x=1")
        assert status == 200

    def test_lifecycle_guards(self):
        monitor = LiveMonitor(rules=[])
        server = MetricsServer(monitor)
        with pytest.raises(RuntimeError):
            server.port  # not started yet
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()  # double start
        finally:
            server.stop()
        server.stop()  # second stop is a no-op

    def test_concurrent_scrapes_while_observing(self):
        monitor = LiveMonitor(window=8, rules=[])
        errors = []

        def observe_many():
            try:
                for _ in range(30):
                    monitor.observe_frame(make_stats(), make_energy())
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with MetricsServer(monitor) as server:
            writer = threading.Thread(target=observe_many)
            writer.start()
            for _ in range(10):
                status, body, _ = self.fetch(server.url + "/metrics")
                assert status == 200
                validate_openmetrics(body)
            writer.join()
        assert errors == []
        assert monitor.frames == 30
