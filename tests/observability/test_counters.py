"""CounterRegistry / CounterSpec / CounterAlgebra unit tests."""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.observability.counters import (
    CounterAlgebra,
    CounterRegistry,
    CounterSpec,
    registry_from_counters,
)


@dataclass
class _Demo(CounterAlgebra):
    _MERGE_SPECIAL = {"low_water": min}

    events: int = 0
    cost_cycles: float = 0.0
    low_water: int = 0


class TestCounterAlgebraMixin:
    def test_fieldwise_add_with_special_combiner(self):
        a = _Demo(events=3, cost_cycles=1.5, low_water=7)
        b = _Demo(events=4, cost_cycles=2.5, low_water=2)
        total = a + b
        assert total == _Demo(events=7, cost_cycles=4.0, low_water=2)

    def test_sum_and_radd(self):
        parts = [_Demo(events=i, low_water=10 - i) for i in range(1, 4)]
        assert sum(parts).events == 6
        assert sum(parts).low_water == 7
        assert _Demo.sum([]).events == 0
        with pytest.raises(TypeError):
            1 + _Demo()
        with pytest.raises(TypeError):
            _Demo() + object()

    def test_as_dict(self):
        assert _Demo(events=2).as_dict() == {
            "events": 2, "cost_cycles": 0.0, "low_water": 0,
        }


class TestCounterSpec:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            CounterSpec("x", kind="complex")
        with pytest.raises(ValueError):
            CounterSpec("")

    def test_int_coercion_accepts_numpy_rejects_bool_and_float(self):
        spec = CounterSpec("n")
        assert spec.coerce(np.int64(5)) == 5
        assert isinstance(spec.coerce(np.int64(5)), int)
        with pytest.raises(TypeError):
            spec.coerce(True)
        with pytest.raises(TypeError):
            spec.coerce(2.5)

    def test_float_coercion(self):
        spec = CounterSpec("c", kind="float", unit="cycles")
        assert spec.coerce(3) == 3.0
        assert isinstance(spec.coerce(np.float64(1.5)), float)
        with pytest.raises(TypeError):
            spec.coerce(True)
        with pytest.raises(TypeError):
            spec.coerce("12")


class TestCounterRegistry:
    def test_register_add_set_get(self):
        registry = CounterRegistry()
        registry.counter("gpu.raster.fragments_produced")
        registry.add("gpu.raster.fragments_produced", 10)
        registry.add("gpu.raster.fragments_produced")
        assert registry["gpu.raster.fragments_produced"] == 11
        registry.set("gpu.raster.fragments_produced", 3)
        assert registry["gpu.raster.fragments_produced"] == 3
        assert "gpu.raster.fragments_produced" in registry
        assert len(registry) == 1

    def test_unregistered_access_raises(self):
        registry = CounterRegistry()
        with pytest.raises(KeyError):
            registry.add("nope")
        with pytest.raises(KeyError):
            registry.set("nope", 1)

    def test_idempotent_registration_conflict_detection(self):
        registry = CounterRegistry()
        registry.counter("a.b", kind="int")
        registry.counter("a.b", kind="int")  # identical: fine
        with pytest.raises(ValueError, match="different"):
            registry.counter("a.b", kind="float")

    def test_merge_sums_shared_and_unions_disjoint(self):
        a = CounterRegistry()
        a.counter("shared")
        a.set("shared", 2)
        a.counter("only_a")
        a.set("only_a", 1)
        b = CounterRegistry()
        b.counter("shared")
        b.set("shared", 5)
        b.counter("only_b", kind="float", unit="cycles")
        b.set("only_b", 1.5)
        merged = a + b
        assert merged.as_dict() == {"shared": 7, "only_a": 1, "only_b": 1.5}
        # Registration order: left operand's names first.
        assert merged.names() == ["shared", "only_a", "only_b"]
        assert merged.spec("only_b").unit == "cycles"

    def test_merge_conflicting_specs_raises(self):
        a = CounterRegistry()
        a.counter("x", kind="int")
        b = CounterRegistry()
        b.counter("x", kind="float")
        with pytest.raises(ValueError):
            a + b

    def test_sum_and_equality(self):
        def make(n):
            registry = CounterRegistry()
            registry.counter("v")
            registry.set("v", n)
            return registry

        total = CounterRegistry.sum([make(1), make(2), make(3)])
        assert total["v"] == 6
        assert total == make(6)
        assert total != make(5)
        assert sum([make(1), make(2)], 0)["v"] == 3

    def test_nonzero_filter(self):
        registry = CounterRegistry()
        registry.counter("zero")
        registry.counter("live")
        registry.add("live", 4)
        assert registry.nonzero() == {"live": 4}


class TestRegistryFromCounters:
    def test_field_names_kinds_units(self):
        demo = _Demo(events=3, cost_cycles=1.5, low_water=9)
        registry = registry_from_counters(demo, "demo", skip=("low_water",))
        assert registry.as_dict() == {
            "demo.events": 3, "demo.cost_cycles": 1.5,
        }
        assert registry.spec("demo.events").kind == "int"
        assert registry.spec("demo.cost_cycles").kind == "float"
        assert registry.spec("demo.cost_cycles").unit == "cycles"

    def test_unit_override(self):
        registry = registry_from_counters(
            _Demo(), "demo", skip=("low_water",), units={"events": "ops"}
        )
        assert registry.spec("demo.events").unit == "ops"


class TestDataclassRegistryViews:
    def test_gpu_stats_registry_roundtrip(self):
        from repro.gpu.stats import GPUStats

        stats = GPUStats(fragments_produced=7, geometry_cycles=12.0)
        registry = stats.registry()
        assert registry["gpu.raster.fragments_produced"] == 7
        assert registry["gpu.geometry.geometry_cycles"] == 12.0
        assert registry.spec("gpu.geometry.geometry_cycles").unit == "cycles"
        # Every dataclass field appears exactly once in the namespace.
        assert len(registry) == len(stats.as_dict())

    def test_tile_stats_registry_skips_tile_index(self):
        from repro.gpu.stats import TileStats

        registry = TileStats(tile_index=5, fragments=3).registry()
        assert "tile.tile_index" not in registry
        assert registry["tile.fragments"] == 3

    def test_op_counter_registry_units(self):
        from repro.physics.counters import OpCounter

        ops = OpCounter()
        ops.add("flop", 10)
        registry = ops.registry()
        assert registry["cpu.ops.flop"] == 10
        assert registry.spec("cpu.ops.flop").unit == "ops"
