"""Flight recorder unit tests: rings, capture, triggers, replay, schema.

The integration-level zero-feedback proof (recorder on == recorder off,
bit-identical, at any worker count) lives in
``tests/integration/test_flightrecorder_differential.py``; this file
covers the recorder's own mechanics with fabricated streams.
"""

import json
import logging

import pytest

from repro.energy.gpu_power import GPUEnergyBreakdown
from repro.energy.report import FrameEnergyReport
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats
from repro.observability.flightrecorder import (
    DEFAULT_STREAM,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    WALL_FIELDS,
    FlightRecorder,
    RingBuffer,
    config_fingerprint,
    deterministic_event,
    deterministic_events,
    validate_postmortem_document,
    verify_alert_record,
    window_values_from_snapshots,
)
from repro.observability.live import LiveMonitor, WatchdogRule
from repro.observability.log import get_logger, log_event
from repro.observability.tracer import Tracer


def make_stats(
    gpu_cycles=1000.0,
    rbcd_cycles=5.0,
    zeb_insertions=100,
    zeb_overflow_events=0,
    zeb_lists_analyzed=50,
    ff_stack_overflows=0,
    collision_pairs_emitted=3,
) -> GPUStats:
    return GPUStats(
        gpu_cycles=gpu_cycles,
        rbcd_cycles=rbcd_cycles,
        zeb_insertions=zeb_insertions,
        zeb_overflow_events=zeb_overflow_events,
        zeb_lists_analyzed=zeb_lists_analyzed,
        ff_stack_overflows=ff_stack_overflows,
        collision_pairs_emitted=collision_pairs_emitted,
    )


def make_energy(total_j=0.001, delay_s=0.002) -> FrameEnergyReport:
    return FrameEnergyReport(
        gpu=GPUEnergyBreakdown(static_j=total_j), delay_s=delay_s
    )


@pytest.fixture
def recorder(tmp_path):
    rec = FlightRecorder(dump_dir=tmp_path / "dumps")
    yield rec
    rec.close()


class TestRingBuffer:
    def test_capacity_validation(self):
        for bad in (0, -1, 1.5, "8"):
            with pytest.raises(ValueError):
                RingBuffer(bad)

    def test_eviction_and_drop_accounting(self):
        ring = RingBuffer(3)
        for i in range(5):
            ring.append(i)
        assert ring.snapshot() == [2, 3, 4]
        assert len(ring) == 3
        assert ring.total == 5
        assert ring.dropped == 2
        assert ring.stats() == {"capacity": 3, "recorded": 5, "dropped": 2}

    def test_snapshot_is_a_copy(self):
        ring = RingBuffer(2)
        ring.append("a")
        snap = ring.snapshot()
        snap.append("b")
        assert ring.snapshot() == ["a"]


class TestConfigFingerprint:
    def test_carries_result_shaping_fields(self):
        config = GPUConfig().with_screen(160, 96)
        fp = config_fingerprint(config)
        assert fp["screen"] == [160, 96]
        assert fp["zeb_count"] == config.rbcd.zeb_count
        assert fp["list_length"] == config.rbcd.list_length
        assert isinstance(fp["token"], str) and len(fp["token"]) == 32

    def test_token_tracks_config_identity(self):
        a = config_fingerprint(GPUConfig().with_screen(160, 96))
        b = config_fingerprint(GPUConfig().with_screen(160, 96))
        c = config_fingerprint(GPUConfig().with_screen(320, 192))
        assert a["token"] == b["token"]
        assert a["token"] != c["token"]


class TestSpanCapture:
    def test_attach_tracer_creates_bounded_tracer(self, recorder):
        tracer = recorder.attach_tracer()
        assert isinstance(tracer, Tracer) and tracer.keep_spans is False

    def test_spans_recorded_with_attrs_and_cycles(self, recorder):
        tracer = recorder.attach_tracer()
        with tracer.span("frame") as sp:
            sp.add_cycles(42.0)
            with tracer.span("rbcd.tile", tile=3):
                pass
        doc = recorder.document()
        spans = doc["streams"][DEFAULT_STREAM]["spans"]
        assert [s["name"] for s in spans] == ["rbcd.tile", "frame"]
        assert spans[0]["attrs"] == {"tile": 3}
        assert spans[1]["cycles"] == 42.0
        assert tracer.spans == []  # bounded: cleared after the root closed

    def test_tenant_attr_routes_span_to_its_stream(self, recorder):
        tracer = recorder.attach_tracer(stream="fallback")
        with tracer.context(tenant="t00"):
            with tracer.span("frame"):
                pass
        with tracer.span("frame"):
            pass
        stats = recorder.stats()
        assert stats["streams"]["t00"]["spans"] == 1
        assert stats["streams"]["fallback"]["spans"] == 1

    def test_existing_tracer_passes_through(self, recorder):
        mine = Tracer()
        assert recorder.attach_tracer(mine) is mine
        with mine.span("x"):
            pass
        assert recorder.stats()["streams"][DEFAULT_STREAM]["spans"] == 1
        assert len(mine.spans) == 1  # keep_spans untouched on foreign tracers


class TestLogCapture:
    def test_repro_log_events_land_in_the_ring(self, recorder):
        log_event(
            get_logger("repro.test.fr"), "unit.test.event",
            level=logging.WARNING, tenant="t00",
        )
        doc = recorder.document()
        events = [r for r in doc["logs"] if r["event"] == "unit.test.event"]
        assert len(events) == 1
        assert events[0]["level"] == "WARNING"
        assert events[0]["tenant"] == "t00"

    def test_close_detaches_and_is_idempotent(self, tmp_path):
        rec = FlightRecorder(dump_dir=tmp_path)
        rec.close()
        rec.close()
        log_event(get_logger("repro.test.fr"), "after.close")
        assert all(
            r["event"] != "after.close" for r in rec.document()["logs"]
        )

    def test_capture_logs_false_records_nothing(self, tmp_path):
        rec = FlightRecorder(dump_dir=tmp_path, capture_logs=False)
        log_event(get_logger("repro.test.fr"), "not.captured")
        assert rec.document()["logs"] == []
        rec.close()


class TestMonitorCapture:
    hot_rule = [
        WatchdogRule("hot", "window.rbcd.activity_ratio", "gt", 0.01)
    ]

    def test_snapshots_alerts_and_recoveries_recorded(self, recorder):
        monitor = recorder.attach_monitor(
            LiveMonitor(window=1, rules=self.hot_rule), stream="t00"
        )
        hot = make_stats(gpu_cycles=1000.0, rbcd_cycles=100.0)
        cold = make_stats(gpu_cycles=1000.0, rbcd_cycles=0.0)
        monitor.observe_frame(cold, make_energy())
        monitor.observe_frame(hot, make_energy())
        monitor.observe_frame(cold, make_energy())
        doc = recorder.document()
        stream = doc["streams"]["t00"]
        assert [r["frame"] for r in stream["snapshots"]] == [0, 1, 2]
        assert [r["kind"] for r in stream["alerts"]] == ["alert", "recovery"]
        assert stream["monitor"] == {
            "window": 1,
            "sketch_accuracy": monitor.sketch_accuracy,
            "ewma_alpha": monitor.ewma_alpha,
        }
        assert stream["counters"] == monitor.totals()

    def test_alert_triggers_exactly_one_dump(self, recorder):
        monitor = recorder.attach_monitor(
            LiveMonitor(window=1, rules=self.hot_rule), stream="t00"
        )
        hot = make_stats(gpu_cycles=1000.0, rbcd_cycles=100.0)
        cold = make_stats(gpu_cycles=1000.0, rbcd_cycles=0.0)
        for stats in (hot, cold, hot):  # two distinct breaches
            monitor.observe_frame(stats, make_energy())
        assert recorder.dumps_written == 1
        assert recorder.dumps_suppressed == 1
        assert recorder.triggers["alert"] == 2
        (path,) = recorder.dump_paths
        assert path.name == "postmortem-0000-alert.json"
        doc = json.loads(path.read_text())
        validate_postmortem_document(doc)
        assert doc["trigger"]["kind"] == "alert"
        assert doc["trigger"]["detail"]["rule"] == "hot"


class TestTriggersAndDumps:
    def test_unarmed_kind_counts_but_never_dumps(self, tmp_path):
        rec = FlightRecorder(dump_dir=tmp_path, dump_on=())
        assert rec.trigger("alert") is None
        assert rec.triggers == {"alert": 1}
        assert rec.dumps_written == 0
        rec.close()

    def test_manual_dump_ignores_limit(self, recorder):
        first = recorder.dump()
        second = recorder.dump()
        assert first != second
        assert recorder.dumps_written == 2
        assert recorder.dumps_suppressed == 0

    def test_dump_without_destination_raises(self):
        rec = FlightRecorder()
        with pytest.raises(ValueError, match="dump_dir"):
            rec.dump()
        rec.close()

    def test_dump_to_explicit_path(self, recorder, tmp_path):
        target = tmp_path / "custom" / "evidence.json"
        target.parent.mkdir()
        assert recorder.dump(target) == target
        validate_postmortem_document(json.loads(target.read_text()))

    def test_rejection_records_then_dumps(self, recorder):
        recorder.record_rejection(
            "t00", "backlog", detail="3 pending", stream_name="s0"
        )
        doc = json.loads(recorder.dump_paths[0].read_text())
        (rec,) = doc["streams"]["t00"]["rejections"]
        assert rec["reason"] == "backlog"
        assert rec["stream_name"] == "s0"
        assert doc["trigger"]["kind"] == "rejection"

    def test_exception_trigger_carries_error(self, recorder):
        recorder.record_exception("t00", RuntimeError("boom"), frame_seq=7)
        doc = json.loads(recorder.dump_paths[0].read_text())
        assert doc["trigger"]["kind"] == "exception"
        assert "boom" in doc["trigger"]["detail"]["error"]
        assert doc["trigger"]["detail"]["frame_seq"] == 7

    def test_dump_failure_is_contained(self, tmp_path):
        victim = tmp_path / "not-a-dir"
        victim.write_text("file, not dir")
        rec = FlightRecorder(dump_dir=victim / "dumps")
        assert rec.trigger("alert") is None  # OSError swallowed + logged
        assert rec.triggers["alert"] == 1
        rec.close()


class TestDeterministicEvents:
    def test_wall_fields_are_stripped(self):
        record = {
            "seq": 1, "kind": "span", "cycles": 5.0,
            "ts": 123.0, "wall_s": 0.1, "t_start": 0.0, "t_end": 0.1,
        }
        assert deterministic_event(record) == {
            "seq": 1, "kind": "span", "cycles": 5.0,
        }
        assert deterministic_events([record, record]) == [
            {"seq": 1, "kind": "span", "cycles": 5.0},
        ] * 2
        assert WALL_FIELDS == {"ts", "wall_s", "t_start", "t_end"}


class TestReplay:
    def _json_roundtrip(self, records):
        return json.loads(json.dumps(records))

    def _feed(self, monitor, frames=6):
        for i in range(frames):
            monitor.observe_frame(
                make_stats(
                    gpu_cycles=1000.0 + 37.0 * i,
                    rbcd_cycles=3.0 + i,
                    zeb_insertions=90 + i,
                    collision_pairs_emitted=i % 4,
                ),
                make_energy(total_j=0.001 + 1e-4 * i),
                wall_s=0.008 + 1e-3 * (i % 3),
            )

    def test_replay_reproduces_live_window_values_exactly(self, recorder):
        monitor = recorder.attach_monitor(LiveMonitor(window=4), stream="t")
        self._feed(monitor)
        snapshots = self._json_roundtrip(
            recorder.document()["streams"]["t"]["snapshots"]
        )
        replayed = window_values_from_snapshots(
            snapshots,
            window=monitor.window_size,
            sketch_accuracy=monitor.sketch_accuracy,
            ewma_alpha=monitor.ewma_alpha,
        )
        assert replayed == monitor.window_values()  # bit-exact, not approx

    def test_verify_alert_reproduced(self, recorder):
        rules = [
            WatchdogRule("hot", "window.rbcd.activity_ratio", "gt", 0.001)
        ]
        monitor = recorder.attach_monitor(
            LiveMonitor(window=4, rules=rules), stream="t"
        )
        self._feed(monitor)
        doc = self._json_roundtrip(recorder.document())
        stream = doc["streams"]["t"]
        (alert,) = [r for r in stream["alerts"] if r["kind"] == "alert"]
        verdict = verify_alert_record(
            alert, stream["snapshots"], stream["monitor"]
        )
        assert verdict["status"] == "reproduced"
        assert verdict["recomputed"] == alert["value"]

    def test_verify_alert_mismatch_on_tamper(self, recorder):
        rules = [
            WatchdogRule("hot", "window.rbcd.activity_ratio", "gt", 0.001)
        ]
        monitor = recorder.attach_monitor(
            LiveMonitor(window=4, rules=rules), stream="t"
        )
        self._feed(monitor)
        doc = self._json_roundtrip(recorder.document())
        stream = doc["streams"]["t"]
        (alert,) = [r for r in stream["alerts"] if r["kind"] == "alert"]
        alert["value"] = alert["value"] * 2.0
        verdict = verify_alert_record(
            alert, stream["snapshots"], stream["monitor"]
        )
        assert verdict["status"] == "mismatch"
        assert "recomputed" in verdict["reason"]

    def test_verify_alert_unverifiable_when_ring_underran(self, tmp_path):
        # An ewma/quantile metric needs every frame since 0; a snapshot
        # ring shorter than the stream must therefore refuse to verify.
        rec = FlightRecorder(dump_dir=tmp_path, snapshot_capacity=2)
        rules = [
            WatchdogRule(
                "slo", "quantile.frame.wall_ms.p95", "gt", 0.0,
                min_frames=4,
            )
        ]
        monitor = rec.attach_monitor(
            LiveMonitor(window=4, rules=rules), stream="t"
        )
        for _ in range(4):
            monitor.observe_frame(make_stats(), make_energy(), wall_s=0.01)
        doc = rec.document()
        stream = doc["streams"]["t"]
        (alert,) = [r for r in stream["alerts"] if r["kind"] == "alert"]
        verdict = verify_alert_record(
            alert, stream["snapshots"], stream["monitor"]
        )
        assert verdict["status"] == "unverifiable"
        assert "missing frame" in verdict["reason"]
        rec.close()


class TestValidator:
    def _doc(self, recorder):
        monitor = recorder.attach_monitor(
            LiveMonitor(
                window=1,
                rules=[
                    WatchdogRule(
                        "hot", "window.rbcd.activity_ratio", "gt", 0.01
                    )
                ],
            ),
            stream="t00",
        )
        monitor.observe_frame(
            make_stats(gpu_cycles=1000.0, rbcd_cycles=100.0), make_energy()
        )
        return json.loads(json.dumps(recorder.document()))

    def test_real_document_validates(self, recorder):
        validate_postmortem_document(self._doc(recorder))

    @pytest.mark.parametrize("mutate,message", [
        (lambda d: d.update(schema="nope"), "schema"),
        (lambda d: d.update(version=99), "version"),
        (lambda d: d.pop("trigger"), "trigger"),
        (lambda d: d["streams"]["t00"]["snapshots"][0].pop("seq"), "seq"),
        (lambda d: d["streams"]["t00"]["alerts"][0].pop("threshold"),
         "threshold"),
        (lambda d: d["streams"]["t00"]["rings"]["snapshots"].update(
            recorded=99), "recorded"),
        (lambda d: d["streams"]["t00"]["counters"].update(bad="x"), "bad"),
        (lambda d: d["stats"].pop("dumps_written"), "dumps_written"),
    ])
    def test_mutations_are_rejected(self, recorder, mutate, message):
        doc = self._doc(recorder)
        mutate(doc)
        with pytest.raises(ValueError, match=message):
            validate_postmortem_document(doc)

    def test_non_monotonic_snapshot_frames_rejected(self, recorder):
        doc = self._doc(recorder)
        snap = dict(doc["streams"]["t00"]["snapshots"][0])
        snap["seq"] = snap["seq"] + 1000
        doc["streams"]["t00"]["snapshots"].append(snap)  # same frame twice
        doc["streams"]["t00"]["rings"]["snapshots"]["recorded"] += 1
        with pytest.raises(ValueError, match="not increasing"):
            validate_postmortem_document(doc)

    def test_schema_constants(self):
        assert SCHEMA_NAME == "rbcd-postmortem"
        assert SCHEMA_VERSION == 1
