"""Attribution engine tests: delta trees, exactness, ranking, checks.

The load-bearing property throughout: every ``exact`` (counter-derived)
non-leaf node's child deltas sum to the parent delta with residual
zero, on *any* pair of well-formed documents — asserted here both on a
synthetic perturbation and on a real tile-cache-on vs -off pair.
"""

import copy

import pytest

from repro.experiments.bench import run_bench
from repro.observability.attribution import (
    AttributionReport,
    SpatialDelta,
    attribute_documents,
    cross_check_document,
)

EXACT_ABS_TOL = 1e-9


@pytest.fixture(scope="module")
def base_doc():
    """One cheap profiled bench document shared by every test here."""
    return run_bench(
        ["crazy"], width=64, height=32, frames=1, detail=1,
        tile_profile=True,
    )


@pytest.fixture(scope="module")
def cache_pair():
    """A real differing pair: the same workload with the tile cache
    off (baseline) and on (current), profiled."""
    kwargs = dict(width=64, height=32, frames=2, detail=1,
                  tile_profile=True)
    return (
        run_bench(["cap"], tile_cache=False, **kwargs),
        run_bench(["cap"], tile_cache=True, **kwargs),
    )


def perturbed(doc, extra_raster_cycles=100.0):
    """A consistent synthetic regression: the rasterizer got slower.

    The extra busy cycles are threaded through every identity that
    mentions them, so the perturbed document still passes its
    cross-checks — the delta is a model change, not corruption.
    """
    other = copy.deepcopy(doc)
    entry = other["scenes"]["crazy"]
    entry["counters"]["gpu.raster.raster_cycles"] += extra_raster_cycles
    entry["counters"]["gpu.raster.raster_pipeline_cycles"] += extra_raster_cycles
    entry["counters"]["gpu.gpu_cycles"] += extra_raster_cycles
    entry["totals"]["gpu_cycles"] += extra_raster_cycles
    entry["tilecache"]["effective_gpu_cycles"] += extra_raster_cycles
    return other


def exact_nodes(report):
    for attribution in report.scenes.values():
        for tree in attribution.trees:
            for _, node in tree.walk():
                if node.kind == "exact" and node.children:
                    yield node


class TestSelfDiff:
    def test_self_attribution_is_all_zero(self, base_doc):
        report = attribute_documents(base_doc, base_doc)
        assert report.ok
        assert report.all_zero
        assert report.warnings == []
        assert report.ranked_causes() == []
        assert "documents agree" in report.render_text()

    def test_cross_checks_pass_on_real_document(self, base_doc):
        assert cross_check_document(base_doc) == []


class TestExactness:
    def test_exact_trees_have_zero_residual_on_perturbation(self, base_doc):
        report = attribute_documents(base_doc, perturbed(base_doc))
        assert report.ok
        nodes = list(exact_nodes(report))
        assert nodes  # the property must actually bite
        for node in nodes:
            assert abs(node.residual) <= max(
                EXACT_ABS_TOL, abs(node.delta) * 1e-9
            ), node.path

    def test_exact_trees_have_zero_residual_on_cache_pair(self, cache_pair):
        baseline, current = cache_pair
        report = attribute_documents(baseline, current)
        assert not report.errors and not report.checks
        for node in exact_nodes(report):
            assert abs(node.residual) <= max(
                EXACT_ABS_TOL, abs(node.delta) * 1e-9
            ), node.path

    def test_child_sum_plus_residual_is_parent_delta_everywhere(
        self, base_doc
    ):
        """The structural invariant on every kind: delta == sum(child
        deltas) + residual, by construction — never silently off."""
        report = attribute_documents(base_doc, perturbed(base_doc))
        for attribution in report.scenes.values():
            for tree in attribution.trees:
                for _, node in tree.walk():
                    if node.children:
                        assert node.delta == pytest.approx(
                            node.child_sum + node.residual, abs=1e-12
                        )


class TestRankingAndExplain:
    def test_ranked_causes_name_the_injected_regression(self, base_doc):
        report = attribute_documents(base_doc, perturbed(base_doc))
        causes = report.ranked_causes(top_k=5)
        assert causes
        top_paths = [c["path"] for c in causes[:3]]
        assert any("raster" in path for path in top_paths)

    def test_explain_decomposes_a_gated_metric(self, base_doc):
        report = attribute_documents(base_doc, perturbed(base_doc))
        causes = report.explain("crazy", "totals.gpu_cycles")
        assert causes
        # The injected cause dominates: the raster-pipeline child
        # carries 100% of the gpu_cycles movement.
        assert "raster" in causes[0]["path"]
        assert causes[0]["share"] == pytest.approx(1.0)

    def test_explain_unknown_scene_or_metric_is_empty(self, base_doc):
        report = attribute_documents(base_doc, perturbed(base_doc))
        assert report.explain("nope", "totals.gpu_cycles") == []
        assert report.explain("crazy", "totals.nope") == []

    def test_counter_namespace_trees_never_ranked(self, base_doc):
        other = copy.deepcopy(base_doc)
        # Move a counter with no rankable tree: only the namespace
        # walk sees it.
        other["scenes"]["crazy"]["counters"]["gpu.frames"] += 1
        report = attribute_documents(base_doc, other)
        assert report.ranked_causes() == []
        # But the namespace tree still carries the delta.
        node = report.scenes["crazy"].find("counters.gpu.frames")
        assert node is not None and node.delta == 1.0


class TestStructure:
    def test_wall_tree_carries_significance_evidence(self, base_doc):
        other = copy.deepcopy(base_doc)
        stage = other["scenes"]["crazy"]["stages"]["raster"]
        stage["wall_ms_runs"] = [v * 3.0 for v in stage["wall_ms_runs"]]
        stage["wall_ms_median"] *= 3.0
        report = attribute_documents(base_doc, other)
        wall = report.scenes["crazy"].find("stages.frame.wall_ms")
        assert wall is not None and wall.kind == "wall"
        raster = wall.find("stages.raster.wall_ms")
        assert raster is not None
        assert "significant" in raster.note

    def test_negated_savings_child_keeps_sum_exact(self, cache_pair):
        baseline, current = cache_pair
        report = attribute_documents(baseline, current)
        tree = report.scenes["cap"].find("tilecache.effective_gpu_cycles")
        assert tree is not None
        saved = tree.find("-tilecache.cycles_saved")
        assert saved is not None
        assert saved.delta <= 0.0  # savings grew -> negated delta
        assert abs(tree.residual) <= EXACT_ABS_TOL

    def test_config_mismatch_warns_but_proceeds(self, cache_pair):
        baseline, current = cache_pair
        report = attribute_documents(baseline, current)
        assert any("tile_cache" in w for w in report.warnings)
        assert report.scenes  # attribution still ran

    def test_missing_scene_is_an_error(self, base_doc):
        other = copy.deepcopy(base_doc)
        other["scenes"] = {}
        report = attribute_documents(base_doc, other)
        assert any("missing from current" in e for e in report.errors)
        assert not report.ok

    def test_non_document_input_is_an_error(self):
        report = attribute_documents({}, {"scenes": {}})
        assert report.errors


class TestCrossChecks:
    def test_broken_counter_algebra_is_caught(self, base_doc):
        broken = copy.deepcopy(base_doc)
        # gpu_cycles no longer equals geometry + raster_pipeline.
        broken["scenes"]["crazy"]["totals"]["gpu_cycles"] += 1.0
        failures = cross_check_document(broken, "broken")
        assert failures
        assert any("gpu_cycles" in f for f in failures)
        report = attribute_documents(base_doc, broken)
        assert report.checks
        assert not report.ok

    def test_broken_tile_profile_sum_is_caught(self, base_doc):
        broken = copy.deepcopy(base_doc)
        profile = broken["scenes"]["crazy"]["tile_profile"]
        profile["cycles"] = [v + 1.0 for v in profile["cycles"]]
        failures = cross_check_document(broken)
        assert any("tile_profile.cycles" in f for f in failures)


class TestSpatial:
    def test_spatial_delta_localizes_a_tile(self, base_doc):
        other = copy.deepcopy(base_doc)
        profile = other["scenes"]["crazy"]["tile_profile"]
        profile["cycles"] = list(profile["cycles"])
        profile["cycles"][2] += 500.0
        report = attribute_documents(base_doc, other)
        spatial = report.scenes["crazy"].spatial
        assert spatial is not None
        top = spatial.top_tiles("cycles")
        assert top[0] == (2, 500.0)
        assert "1/" in spatial.summary("cycles")

    def test_spatial_absent_when_either_side_unprofiled(self, base_doc):
        other = copy.deepcopy(base_doc)
        other["scenes"]["crazy"]["tile_profile"] = {"enabled": False}
        report = attribute_documents(base_doc, other)
        assert report.scenes["crazy"].spatial is None

    def test_dimension_mismatch_warns_and_skips(self, base_doc):
        other = copy.deepcopy(base_doc)
        other["scenes"]["crazy"]["tile_profile"]["tiles_x"] += 1
        report = attribute_documents(base_doc, other)
        assert report.scenes["crazy"].spatial is None
        assert any("dimensions differ" in w for w in report.warnings)

    def test_top_tiles_deterministic_on_ties(self):
        spatial = SpatialDelta(
            tiles_x=2, tiles_y=2,
            grids={"cycles": [5.0, -5.0, 5.0, 0.0]},
        )
        assert spatial.top_tiles("cycles", coverage=1.0) == [
            (0, 5.0), (1, -5.0), (2, 5.0),
        ]

    def test_all_zero_grid_summary(self):
        spatial = SpatialDelta(
            tiles_x=1, tiles_y=1, grids={"cycles": [0.0]}
        )
        assert spatial.top_tiles("cycles") == []
        assert "unchanged" in spatial.summary("cycles")


class TestRenderers:
    def test_json_dict_is_self_describing(self, base_doc):
        report = attribute_documents(base_doc, perturbed(base_doc))
        data = report.as_dict()
        assert data["schema"] == "rbcd-attribution"
        assert data["ok"] is True
        assert data["all_zero"] is False
        assert data["ranked_causes"]
        tree = data["scenes"]["crazy"]["trees"][0]
        assert {"path", "kind", "baseline", "current", "delta"} <= set(tree)

    def test_csv_has_header_and_rows(self, base_doc):
        report = attribute_documents(base_doc, perturbed(base_doc))
        lines = report.to_csv().splitlines()
        assert lines[0].startswith("scene,tree,path,depth,kind")
        assert len(lines) > 10

    def test_render_text_names_the_cause(self, base_doc):
        report = attribute_documents(base_doc, perturbed(base_doc))
        text = report.render_text()
        assert "top" in text
        assert "raster" in text
        assert "residual" in text
