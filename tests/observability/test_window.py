"""Streaming aggregation primitives: windows, EWMA, mergeable summaries.

The merge tests use integer-valued floats so associativity and
commutativity can be asserted bit-exactly (the repo convention for
merge-algebra tests); the quantile-sketch accuracy test checks the
DDSketch relative-error bound on a non-trivial sample set.
"""

import math
import random

import pytest

from repro.observability.window import (
    Ewma,
    QuantileSketch,
    SlidingWindow,
    WindowAggregate,
)


class TestSlidingWindow:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)

    def test_empty_statistics_are_zero(self):
        w = SlidingWindow(4)
        assert len(w) == 0
        assert not w.full
        assert w.sum() == 0.0
        assert w.mean() == 0.0
        assert w.min() == 0.0
        assert w.max() == 0.0
        assert w.last() == 0.0

    def test_statistics_over_partial_window(self):
        w = SlidingWindow(4)
        for v in (1.0, 2.0, 3.0):
            w.push(v)
        assert len(w) == 3 and not w.full
        assert w.sum() == 6.0
        assert w.mean() == 2.0
        assert (w.min(), w.max(), w.last()) == (1.0, 3.0, 3.0)

    def test_eviction_keeps_only_newest(self):
        w = SlidingWindow(3)
        for v in (10.0, 20.0, 30.0, 40.0):
            w.push(v)
        assert w.full
        assert w.values() == [20.0, 30.0, 40.0]
        assert w.sum() == 90.0
        assert w.min() == 20.0

    def test_repr_mentions_fill_level(self):
        w = SlidingWindow(5)
        w.push(2.0)
        assert "1/5" in repr(w)


class TestEwma:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            Ewma(0.0)
        with pytest.raises(ValueError):
            Ewma(1.5)

    def test_seeded_by_first_sample(self):
        e = Ewma(0.5)
        assert not e.initialized
        assert e.value == 0.0
        assert e.update(10.0) == 10.0
        assert e.initialized

    def test_converges_toward_stream(self):
        e = Ewma(0.5)
        e.update(0.0)
        for _ in range(20):
            e.update(100.0)
        assert e.value == pytest.approx(100.0, abs=1e-3)

    def test_alpha_one_tracks_last_sample(self):
        e = Ewma(1.0)
        e.update(3.0)
        e.update(7.0)
        assert e.value == 7.0


class TestWindowAggregate:
    def test_empty_is_merge_identity(self):
        agg = WindowAggregate.of([1.0, 2.0, 5.0])
        empty = WindowAggregate()
        assert agg + empty == agg
        assert empty + agg == agg
        assert empty + empty == empty

    def test_of_matches_incremental_observe(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0]
        agg = WindowAggregate()
        for v in values:
            agg = agg.observe(v)
        assert agg == WindowAggregate.of(values)
        assert agg.count == 5
        assert agg.total == 14.0
        assert (agg.minimum, agg.maximum) == (1.0, 5.0)
        assert agg.mean == pytest.approx(2.8)

    def test_merge_associative_and_commutative(self):
        # Integer-valued floats: sums are bit-exact in any order.
        rng = random.Random(7)
        shards = [
            WindowAggregate.of([float(rng.randrange(1000)) for _ in range(20)])
            for _ in range(4)
        ]
        a, b, c, d = shards
        assert (a + b) + (c + d) == ((a + b) + c) + d
        assert a + b == b + a
        assert (d + c) + (b + a) == a + (b + (c + d))

    def test_merge_equals_flat_aggregation(self):
        values = [float(v) for v in range(40)]
        flat = WindowAggregate.of(values)
        sharded = (
            WindowAggregate.of(values[:13])
            + WindowAggregate.of(values[13:29])
            + WindowAggregate.of(values[29:])
        )
        assert sharded == flat

    def test_as_dict_empty_has_no_infinities(self):
        d = WindowAggregate().as_dict()
        assert d == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                     "mean": 0.0}

    def test_add_rejects_other_types(self):
        with pytest.raises(TypeError):
            WindowAggregate() + 3


class TestQuantileSketch:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(relative_accuracy=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(zero_threshold=-1.0)

    def test_rejects_bad_samples(self):
        s = QuantileSketch()
        with pytest.raises(ValueError):
            s.add(-1.0)
        with pytest.raises(ValueError):
            s.add(float("nan"))
        with pytest.raises(ValueError):
            s.add(float("inf"))
        with pytest.raises(ValueError):
            s.add(1.0, count=0)

    def test_empty_sketch(self):
        s = QuantileSketch()
        assert s.quantile(0.5) is None
        assert s.min == 0.0 and s.max == 0.0
        with pytest.raises(ValueError):
            s.quantile(1.5)

    def test_zero_bucket_is_exact(self):
        s = QuantileSketch()
        for _ in range(10):
            s.add(0.0)
        s.add(100.0)
        assert s.quantile(0.5) == 0.0
        assert s.count == 11

    def test_relative_accuracy_bound(self):
        accuracy = 0.01
        s = QuantileSketch(relative_accuracy=accuracy)
        rng = random.Random(42)
        samples = sorted(rng.lognormvariate(0.0, 2.0) for _ in range(5000))
        for v in samples:
            s.add(v)
        for q in (0.5, 0.9, 0.95, 0.99):
            true = samples[max(0, math.ceil(q * len(samples)) - 1)]
            got = s.quantile(q)
            assert got == pytest.approx(true, rel=2 * accuracy), q

    def test_merge_associative_commutative_and_exact(self):
        rng = random.Random(9)
        streams = [
            [rng.lognormvariate(0.0, 1.0) for _ in range(200)]
            for _ in range(3)
        ]
        sketches = []
        for stream in streams:
            s = QuantileSketch()
            for v in stream:
                s.add(v)
            sketches.append(s)
        a, b, c = sketches
        assert (a + b) + c == a + (b + c)
        assert a + b == b + a
        # The merged sketch equals the flat sketch over all samples.
        flat = QuantileSketch()
        for stream in streams:
            for v in stream:
                flat.add(v)
        merged = a + b + c
        assert merged == flat
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == flat.quantile(q)

    def test_merge_rejects_mismatched_parameters(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))
        with pytest.raises(TypeError):
            QuantileSketch().merge(object())
        assert QuantileSketch().__add__(5) is NotImplemented

    def test_weighted_add(self):
        s = QuantileSketch()
        s.add(10.0, count=99)
        s.add(1000.0, count=1)
        assert s.quantile(0.5) == pytest.approx(10.0, rel=0.03)
        assert s.count == 100

    def test_as_dict_round_trips_buckets_as_strings(self):
        s = QuantileSketch()
        s.add(1.0)
        s.add(2.5)
        d = s.as_dict()
        assert d["count"] == 2
        assert all(isinstance(k, str) for k in d["buckets"])
        assert sum(d["buckets"].values()) == 2
