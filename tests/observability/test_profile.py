"""ProfilingTracer: hotspot attribution, nesting rules, invariance."""

import json

import pytest

from repro.observability.export import to_ndjson
from repro.observability.profile import (
    DEFAULT_PROFILED_SPANS,
    ProfilingTracer,
    hotspots_from_profile,
)


def burn(n=2000):
    """Something with a recognizable name for hotspot attribution."""
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestHotspotsFromProfile:
    def test_names_and_counts(self):
        import cProfile

        profile = cProfile.Profile()
        profile.enable()
        burn()
        burn()
        profile.disable()
        hotspots = hotspots_from_profile(profile, top_n=50)
        assert hotspots
        by_name = {h["func"]: h for h in hotspots}
        assert "burn" in by_name
        entry = by_name["burn"]
        assert entry["ncalls"] == 2
        assert entry["tottime_s"] >= 0.0
        assert entry["cumtime_s"] >= entry["tottime_s"]
        assert entry["file"].endswith("test_profile.py")
        assert entry["line"] > 0

    def test_top_n_truncates(self):
        import cProfile

        profile = cProfile.Profile()
        profile.enable()
        burn()
        profile.disable()
        assert len(hotspots_from_profile(profile, top_n=1)) == 1

    def test_ranked_by_own_time(self):
        import cProfile

        profile = cProfile.Profile()
        profile.enable()
        burn(20000)
        profile.disable()
        hotspots = hotspots_from_profile(profile, top_n=10)
        times = [h["tottime_s"] for h in hotspots]
        assert times == sorted(times, reverse=True)


class TestProfilingTracer:
    def test_profiled_span_gets_hotspots(self):
        tracer = ProfilingTracer(span_names={"work"})
        with tracer.span("work"):
            burn()
        (span,) = tracer.profiled_spans()
        assert span.name == "work"
        funcs = {h["func"] for h in span.attrs["hotspots"]}
        assert "burn" in funcs

    def test_unlisted_spans_not_profiled(self):
        tracer = ProfilingTracer(span_names={"work"})
        with tracer.span("other"):
            burn()
        assert tracer.profiled_spans() == []

    def test_only_outermost_matching_span_profiles(self):
        tracer = ProfilingTracer(span_names={"outer", "inner"})
        with tracer.span("outer"):
            with tracer.span("inner"):
                burn()
        profiled = tracer.profiled_spans()
        assert [s.name for s in profiled] == ["outer"]

    def test_sibling_spans_each_profile(self):
        tracer = ProfilingTracer(span_names={"a", "b"})
        with tracer.span("root"):
            with tracer.span("a"):
                burn()
            with tracer.span("b"):
                burn()
        assert sorted(s.name for s in tracer.profiled_spans()) == ["a", "b"]

    def test_min_wall_s_discards_fast_spans(self):
        tracer = ProfilingTracer(span_names={"work"}, min_wall_s=3600.0)
        with tracer.span("work"):
            burn()
        assert tracer.profiled_spans() == []

    def test_top_n_limits_attached_hotspots(self):
        tracer = ProfilingTracer(span_names={"work"}, top_n=2)
        with tracer.span("work"):
            burn()
        (span,) = tracer.profiled_spans()
        assert len(span.attrs["hotspots"]) <= 2

    def test_rejects_bad_top_n(self):
        with pytest.raises(ValueError):
            ProfilingTracer(top_n=0)

    def test_reset_clears_profiles(self):
        tracer = ProfilingTracer(span_names={"work"})
        with tracer.span("work"):
            burn()
        tracer.reset()
        assert tracer.spans == []
        with tracer.span("work"):
            burn()
        assert len(tracer.profiled_spans()) == 1

    def test_default_span_set_is_pipeline_stages(self):
        assert DEFAULT_PROFILED_SPANS == {"geometry", "raster", "rbcd",
                                          "schedule"}

    def test_hotspots_serialize_to_ndjson(self):
        tracer = ProfilingTracer(span_names={"work"})
        with tracer.span("work"):
            burn()
        lines = to_ndjson(tracer).splitlines()
        records = [json.loads(line) for line in lines]
        (work,) = [r for r in records if r["name"] == "work"]
        assert isinstance(work["attrs"]["hotspots"], list)
        assert work["attrs"]["hotspots"][0]["tottime_s"] >= 0.0


class TestResultInvariance:
    def test_profiling_does_not_change_detection(self):
        from repro.core import RBCDSystem
        from repro.gpu.config import GPUConfig
        from repro.scenes.benchmarks import workload_by_alias

        workload = workload_by_alias("crazy", detail=1)
        config = GPUConfig().with_screen(64, 32)
        frame = workload.scene.frame_at(0.0, config)
        results = []
        for tracer in (None, ProfilingTracer()):
            with RBCDSystem(config=config, tracer=tracer) as system:
                results.append(system.detect_frame(frame))
        plain, profiled = results
        assert plain.pairs == profiled.pairs
        assert plain.stats.gpu_cycles == profiled.stats.gpu_cycles
        assert plain.energy.total_j == profiled.energy.total_j
        # The profiled run actually attributed hotspots somewhere.
        assert isinstance(results[1], type(plain))
