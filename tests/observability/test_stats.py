"""Small-sample statistics: summaries, bootstrap CIs, Mann-Whitney."""

import math

import pytest

from repro.observability.stats import (
    MannWhitneyResult,
    bootstrap_ci,
    mann_whitney_u,
    summarize,
)


class TestSummarize:
    def test_order_statistics(self):
        s = summarize([3.0, 1.0, 2.0, 10.0])
        assert s.n == 4
        assert s.minimum == 1.0
        assert s.maximum == 10.0
        assert s.median == 2.5
        assert s.mean == 4.0

    def test_single_element(self):
        s = summarize([7.0])
        assert (s.minimum, s.median, s.mean, s.maximum) == (7.0,) * 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict(self):
        assert summarize([1.0, 3.0]).as_dict() == {
            "n": 2, "min": 1.0, "median": 2.0, "mean": 2.0, "max": 3.0,
        }


class TestBootstrapCI:
    def test_deterministic_across_calls(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert bootstrap_ci(samples) == bootstrap_ci(samples)

    def test_bounds_bracket_the_median(self):
        samples = [10.0, 11.0, 12.0, 13.0, 14.0]
        lo, hi = bootstrap_ci(samples)
        assert 10.0 <= lo <= 12.0 <= hi <= 14.0

    def test_single_sample_degenerates(self):
        assert bootstrap_ci([42.0]) == (42.0, 42.0)

    def test_constant_sample_collapses(self):
        assert bootstrap_ci([5.0] * 6) == (5.0, 5.0)

    def test_wider_confidence_is_wider(self):
        samples = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 4.0]
        lo99, hi99 = bootstrap_ci(samples, confidence=0.99)
        lo80, hi80 = bootstrap_ci(samples, confidence=0.80)
        assert lo99 <= lo80 and hi80 <= hi99

    def test_custom_statistic(self):
        import numpy as np

        samples = [1.0, 2.0, 3.0]
        lo, hi = bootstrap_ci(samples, statistic=np.mean)
        assert 1.0 <= lo <= hi <= 3.0

    @pytest.mark.parametrize("kwargs", [
        {"confidence": 0.0}, {"confidence": 1.0}, {"n_resamples": 0},
    ])
    def test_rejects_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], **kwargs)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])


class TestMannWhitney:
    def test_identical_samples_not_significant(self):
        result = mann_whitney_u([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert result.method == "exact"
        assert result.p_value == 1.0
        assert not result.significant()

    def test_fully_separated_small_samples(self):
        # n=m=3 fully separated: best achievable two-sided exact p is
        # 2/C(6,3) = 0.1 — never "significant" at alpha=0.05, by design.
        result = mann_whitney_u([1.0, 2.0, 3.0], [10.0, 11.0, 12.0])
        assert result.method == "exact"
        assert result.u == 0.0
        assert result.p_value == pytest.approx(2.0 / 20.0)

    def test_fully_separated_larger_exact(self):
        # n=m=5 fully separated: p = 2/C(10,5) ≈ 0.0079 — significant.
        a = [1.0, 2.0, 3.0, 4.0, 5.0]
        b = [10.0, 11.0, 12.0, 13.0, 14.0]
        result = mann_whitney_u(a, b)
        assert result.method == "exact"
        assert result.p_value == pytest.approx(2.0 / math.comb(10, 5))
        assert result.significant()

    def test_symmetry(self):
        a, b = [1.0, 5.0, 3.0], [2.0, 8.0, 9.0, 4.0]
        assert mann_whitney_u(a, b).p_value == pytest.approx(
            mann_whitney_u(b, a).p_value
        )

    def test_u_complement(self):
        a, b = [1.0, 5.0, 3.0], [2.0, 8.0, 9.0, 4.0]
        u_ab = mann_whitney_u(a, b).u
        u_ba = mann_whitney_u(b, a).u
        assert u_ab + u_ba == pytest.approx(len(a) * len(b))

    def test_ties_use_midranks(self):
        result = mann_whitney_u([1.0, 2.0, 2.0], [2.0, 3.0, 4.0])
        assert result.method == "exact"
        assert 0.0 < result.p_value <= 1.0

    def test_normal_approximation_for_large_samples(self):
        a = [float(i) for i in range(10)]
        b = [float(i) + 20.0 for i in range(10)]
        result = mann_whitney_u(a, b)
        assert result.method == "normal"
        assert result.significant(0.01)

    def test_normal_all_identical(self):
        result = mann_whitney_u([1.0] * 8, [1.0] * 8)
        assert result.method == "normal"
        assert result.p_value == 1.0

    def test_exact_and_normal_agree_near_the_boundary(self):
        # Same data evaluated exactly (n+m=12) and forced through the
        # normal path (n+m=14) should give p-values in the same regime.
        a6 = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        b6 = [4.5, 5.5, 6.5, 7.5, 8.5, 9.5]
        exact = mann_whitney_u(a6, b6)
        a7 = a6 + [3.5]
        b7 = b6 + [7.0]
        normal = mann_whitney_u(a7, b7)
        assert exact.method == "exact" and normal.method == "normal"
        assert abs(exact.p_value - normal.p_value) < 0.15

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mann_whitney_u([], [1.0])
        with pytest.raises(ValueError):
            mann_whitney_u([1.0], [])

    def test_result_is_frozen(self):
        result = MannWhitneyResult(u=1.0, p_value=0.5, method="exact")
        with pytest.raises(AttributeError):
            result.p_value = 0.01
