"""Exporter tests: ndjson line schema and Chrome trace format."""

import json

import pytest

from repro.observability.export import (
    span_record,
    to_chrome_trace,
    to_ndjson,
    write_chrome_trace,
    write_ndjson,
)
from repro.observability.tracer import Tracer

from tests.observability.test_tracer import FakeClock


@pytest.fixture
def traced():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("frame", category="frame", draws=2) as frame:
        clock.tick(0.5)
        with tracer.span("geometry") as geometry:
            clock.tick(1.0)
        geometry.cycles = 40.0
    frame.cycles = 100.0
    return tracer


class TestNdjson:
    def test_one_line_per_span_in_start_order(self, traced):
        text = to_ndjson(traced)
        assert text.endswith("\n")
        records = [json.loads(line) for line in text.splitlines()]
        assert [r["name"] for r in records] == ["frame", "geometry"]

    def test_record_schema(self, traced):
        record = span_record(traced.spans[0])
        assert record == {
            "name": "frame",
            "cat": "frame",
            "index": 0,
            "parent": -1,
            "depth": 0,
            "t_start_s": 0.0,
            "wall_s": 1.5,
            "cycles": 100.0,
            "attrs": {"draws": 2},
        }
        child = span_record(traced.spans[1])
        assert child["parent"] == 0
        assert child["depth"] == 1
        assert child["wall_s"] == 1.0
        assert child["cycles"] == 40.0

    def test_empty_tracer_yields_empty_string(self):
        assert to_ndjson(Tracer()) == ""

    def test_write_roundtrip(self, traced, tmp_path):
        path = write_ndjson(traced, tmp_path / "trace.ndjson")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "geometry"


class TestChromeTrace:
    def test_document_structure(self, traced):
        doc = to_chrome_trace(traced, process_name="bench")
        assert doc["displayTimeUnit"] == "ms"
        meta, *events = doc["traceEvents"]
        assert meta["ph"] == "M"
        assert meta["args"] == {"name": "bench"}
        assert [e["name"] for e in events] == ["frame", "geometry"]
        for e in events:
            assert e["ph"] == "X"

    def test_microsecond_timestamps_and_cycle_args(self, traced):
        doc = to_chrome_trace(traced)
        frame, geometry = doc["traceEvents"][1:]
        assert frame["ts"] == 0.0
        assert frame["dur"] == pytest.approx(1.5e6)
        assert geometry["ts"] == pytest.approx(0.5e6)
        assert geometry["dur"] == pytest.approx(1.0e6)
        assert frame["args"] == {"cycles": 100.0, "draws": 2}
        assert geometry["args"] == {"cycles": 40.0}

    def test_write_is_valid_json(self, traced, tmp_path):
        path = write_chrome_trace(traced, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 3
