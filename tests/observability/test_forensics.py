"""Forensics engine + explain CLI: every divergence gets a cause.

The engine's acceptance bar (mirrored by the CI smoke job): on the
``cap`` scene with a deliberately undersized ZEB (M=2) every
RBCD-vs-oracle divergence must land in the taxonomy — ``unclassified``
stays empty — and at the Table-2 default (M=8) RBCD and the oracle
agree outright.
"""

import json

import pytest

from repro.experiments.explain import build_config, main
from repro.gpu.config import GPUConfig
from repro.observability.forensics import (
    CAUSE_BROAD_PHASE,
    CAUSE_DEFERRED_CULLING,
    CAUSE_FF_STACK,
    CAUSE_ORACLE_CONTAINMENT,
    CAUSE_RESOLUTION,
    CAUSE_UNCLASSIFIED,
    CAUSE_Z_PRECISION,
    CAUSE_ZEB_OVERFLOW,
    CAUSES,
    Divergence,
    _classify_false_negative,
    _classify_false_positive,
    run_forensics,
)
from repro.observability.provenance import validate_provenance_ndjson
from repro.scenes.benchmarks import workload_by_alias

WIDTH, HEIGHT = 160, 96
FRAMES = 4  # cap's workload only collides mid-run; 4 samples hit it


@pytest.fixture(scope="module")
def starved_report():
    """cap with M=2: ZEB overflows drop pairs, forensics explains them."""
    workload = workload_by_alias("cap", detail=1)
    config = build_config(WIDTH, HEIGHT, zeb_elements=2)
    return run_forensics(workload, config, frames=FRAMES)


class TestRunForensics:
    def test_default_config_agrees_with_the_oracle(self):
        workload = workload_by_alias("cap", detail=1)
        config = build_config(WIDTH, HEIGHT, zeb_elements=8)
        report = run_forensics(workload, config, frames=FRAMES)
        assert report.divergences == []
        assert report.agreements > 0
        assert report.recorder.pairs_recorded > 0

    def test_starved_zeb_divergences_are_all_classified(
        self, starved_report
    ):
        assert starved_report.divergences, (
            "M=2 on cap should drop pairs — did the scene change?"
        )
        assert starved_report.unclassified == []
        for divergence in starved_report.divergences:
            assert divergence.cause in CAUSES
            assert divergence.cause != CAUSE_UNCLASSIFIED
            assert divergence.detail
            assert divergence.id_a < divergence.id_b
        assert CAUSE_ZEB_OVERFLOW in starved_report.by_cause()

    def test_report_document_shape(self, starved_report):
        doc = starved_report.as_document()
        assert doc["schema"] == "rbcd-forensics"
        assert doc["version"] == 1
        assert doc["scene"] == "cap"
        assert doc["config"] == {
            "frames": FRAMES,
            "width": WIDTH,
            "height": HEIGHT,
            "zeb_elements": 2,
        }
        assert len(doc["pairs"]["rbcd"]) == FRAMES
        assert len(doc["pairs"]["oracle"]) == FRAMES
        assert sum(doc["by_cause"].values()) == len(doc["divergences"])
        assert set(doc["by_cause"]) <= set(CAUSES)
        json.dumps(doc)  # JSON-serializable end to end

    def test_divergence_records(self):
        divergence = Divergence(
            frame=1, id_a=2, id_b=5, kind="false_negative",
            cause=CAUSE_ZEB_OVERFLOW, detail="dropped at (3, 4)",
            witness_pixels=[(3, 4)],
        )
        record = divergence.as_record()
        assert record["type"] == "divergence"
        assert record["pair"] == [2, 5]
        assert record["witness_pixels"] == [[3, 4]]
        assert "[FN] zeb-overflow" in divergence.describe()


class FakeReplays:
    """Duck-typed `_FrameReplays`: each rung's answer is scripted.

    Lets every branch of the classification ladder be exercised without
    rendering seven frames per test.
    """

    def __init__(
        self,
        *,
        faces=None,
        deep_stack=(),
        long_lists=(),
        fine_z=(),
        hires=(),
        drops=0,
    ):
        self.config = GPUConfig()
        self._faces = faces or {}
        self.deep_stack = set(deep_stack)
        self.long_lists = set(long_lists)
        self.fine_z = set(fine_z)
        self.hires = set(hires)
        self._drops = drops

    def fragment_faces(self, object_id):
        return self._faces.get(object_id, (10, 10))

    def overflow_at(self, pixels):
        return self._drops


class TestClassificationLadder:
    PAIR = (1, 2)

    def test_false_negative_rungs_in_order(self):
        everywhere = {self.PAIR}
        cases = [
            (FakeReplays(faces={2: (0, 0)}), CAUSE_BROAD_PHASE),
            (FakeReplays(faces={1: (0, 5)}), CAUSE_DEFERRED_CULLING),
            (FakeReplays(faces={2: (5, 0)}), CAUSE_DEFERRED_CULLING),
            (FakeReplays(deep_stack=everywhere), CAUSE_FF_STACK),
            (FakeReplays(long_lists=everywhere), CAUSE_ZEB_OVERFLOW),
            (FakeReplays(fine_z=everywhere), CAUSE_Z_PRECISION),
            (FakeReplays(hires=everywhere), CAUSE_RESOLUTION),
            (FakeReplays(), CAUSE_UNCLASSIFIED),
        ]
        for replays, expected in cases:
            cause, detail = _classify_false_negative(self.PAIR, replays)
            assert cause == expected, detail

    def test_false_negative_ffstack_wins_over_zeb(self):
        # The FF-Stack rung relaxes only the stack; if that alone flips
        # the verdict, ZEB capacity was never the limiter.
        replays = FakeReplays(
            deep_stack={self.PAIR}, long_lists={self.PAIR}
        )
        cause, _ = _classify_false_negative(self.PAIR, replays)
        assert cause == CAUSE_FF_STACK

    def test_false_positive_rungs_in_order(self):
        everywhere = {self.PAIR}
        all_rungs = dict(
            deep_stack=everywhere, long_lists=everywhere,
            fine_z=everywhere, hires=everywhere,
        )
        cases = [
            (FakeReplays(), True, CAUSE_ORACLE_CONTAINMENT),
            (FakeReplays(), False, CAUSE_FF_STACK),
            (
                FakeReplays(deep_stack=everywhere, drops=3),
                False,
                CAUSE_ZEB_OVERFLOW,
            ),
            (
                FakeReplays(deep_stack=everywhere, long_lists=everywhere),
                False,
                CAUSE_Z_PRECISION,
            ),
            (
                FakeReplays(
                    deep_stack=everywhere, long_lists=everywhere,
                    fine_z=everywhere,
                ),
                False,
                CAUSE_RESOLUTION,
            ),
            (FakeReplays(**all_rungs), False, CAUSE_UNCLASSIFIED),
        ]
        for replays, contained, expected in cases:
            cause, detail = _classify_false_positive(
                self.PAIR, replays, contained, [(0, 0)]
            )
            assert cause == expected, detail

    def test_false_positive_zeb_detail_counts_witness_drops(self):
        replays = FakeReplays(deep_stack={self.PAIR}, drops=7)
        cause, detail = _classify_false_positive(
            self.PAIR, replays, False, [(3, 4)]
        )
        assert cause == CAUSE_ZEB_OVERFLOW
        assert "7 element(s)" in detail


class TestExplainCLI:
    def run_cli(self, tmp_path, *extra):
        evidence = tmp_path / "evidence.ndjson"
        report = tmp_path / "report.json"
        argv = [
            "--scene", "cap", "--detail", "1",
            "--width", str(WIDTH), "--height", str(HEIGHT),
            "--frames", str(FRAMES),
            "--evidence", str(evidence), "--json", str(report),
            *extra,
        ]
        return main(argv), evidence, report

    def test_exit_zero_and_valid_evidence_with_default_zeb(self, tmp_path):
        code, evidence, report = self.run_cli(tmp_path, "--zeb-elements", "8")
        assert code == 0
        assert validate_provenance_ndjson(evidence.read_text()) > 0
        doc = json.loads(report.read_text())
        assert doc["by_cause"] == {}

    def test_starved_zeb_still_exits_zero_fully_classified(self, tmp_path):
        code, evidence, report = self.run_cli(tmp_path, "--zeb-elements", "2")
        assert code == 0  # divergences exist but all are classified
        doc = json.loads(report.read_text())
        assert doc["divergences"]
        assert CAUSE_UNCLASSIFIED not in doc["by_cause"]
        validate_provenance_ndjson(evidence.read_text())

    def test_rejects_bad_zeb_elements(self, tmp_path):
        with pytest.raises(SystemExit):
            self.run_cli(tmp_path, "--zeb-elements", "0")
