"""Property tests for the clipper and viewport mapping."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4
from repro.gpu.assembly import _clip_polygon_homogeneous, assemble
from repro.gpu.commands import CullMode, DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.shading import shade_draws
from repro.gpu.stats import GPUStats

CFG = GPUConfig().with_screen(80, 80)
PROJ = Mat4.perspective(math.radians(70), 1.0, 0.5, 40.0)

coord = st.floats(min_value=-30, max_value=30, allow_nan=False)


@st.composite
def random_triangle(draw):
    verts = [[draw(coord), draw(coord), draw(coord)] for _ in range(3)]
    return verts


class TestClipperProperties:
    @settings(max_examples=120, deadline=None)
    @given(random_triangle())
    def test_output_inside_frustum(self, verts):
        mesh = TriangleMesh(np.array(verts), np.array([[0, 1, 2]]))
        frame = Frame(
            draws=(DrawCommand(mesh, Mat4.identity(), cull_mode=CullMode.NONE),),
            view=Mat4.identity(),
            projection=PROJ,
        )
        stats = GPUStats()
        soup = assemble(shade_draws(frame, CFG, stats), CFG, stats)
        if soup.count == 0:
            return
        # Every surviving vertex maps inside the viewport and depth range
        # (tiny epsilon for the float interpolation at plane crossings).
        assert soup.xy[:, :, 0].min() >= -1e-6
        assert soup.xy[:, :, 0].max() <= CFG.screen_width + 1e-6
        assert soup.xy[:, :, 1].min() >= -1e-6
        assert soup.xy[:, :, 1].max() <= CFG.screen_height + 1e-6
        assert soup.z.min() >= -1e-6
        assert soup.z.max() <= 1.0 + 1e-6
        assert np.isfinite(soup.xy).all()

    @settings(max_examples=80, deadline=None)
    @given(random_triangle())
    def test_conservation_of_triangles(self, verts):
        """Every input face is accounted for: kept, clipped into a fan,
        culled, tagged, or dropped as degenerate."""
        mesh = TriangleMesh(np.array(verts), np.array([[0, 1, 2]]))
        frame = Frame(
            draws=(DrawCommand(mesh, Mat4.identity(), cull_mode=CullMode.NONE),),
            view=Mat4.identity(),
            projection=PROJ,
        )
        stats = GPUStats()
        soup = assemble(shade_draws(frame, CFG, stats), CFG, stats)
        assert stats.triangles_assembled == 1
        accounted = (
            stats.triangles_frustum_culled
            + stats.triangles_degenerate
            + stats.triangles_face_culled
        )
        # Either the face left the pipeline, or it produced >= 1 output.
        assert (accounted >= 1) or soup.count >= 1

    def test_clip_fully_inside_polygon_unchanged(self):
        poly = np.array(
            [[0.1, 0.1, 0.0, 1.0], [0.3, 0.1, 0.0, 1.0], [0.2, 0.4, 0.0, 1.0]]
        )
        out = _clip_polygon_homogeneous(poly)
        assert out.shape[0] == 3
        assert np.allclose(sorted(out[:, 0]), sorted(poly[:, 0]))

    def test_clip_fully_outside_empty(self):
        poly = np.array(
            [[5.0, 0.0, 0.0, 1.0], [6.0, 0.0, 0.0, 1.0], [5.5, 1.0, 0.0, 1.0]]
        )
        assert _clip_polygon_homogeneous(poly).shape[0] == 0

    def test_clip_crossing_grows_vertex_count(self):
        # A triangle poking through one frustum corner gains vertices.
        poly = np.array(
            [[0.0, 0.0, 0.0, 1.0], [2.0, 0.0, 0.0, 1.0], [0.0, 2.0, 0.0, 1.0]]
        )
        out = _clip_polygon_homogeneous(poly)
        assert out.shape[0] >= 4
        assert (np.abs(out[:, 0]) <= out[:, 3] + 1e-9).all()
        assert (np.abs(out[:, 1]) <= out[:, 3] + 1e-9).all()

    @settings(max_examples=60, deadline=None)
    @given(random_triangle())
    def test_clipped_polygon_within_planes(self, verts):
        from repro.geometry.vec import transform_points_homogeneous

        hom = transform_points_homogeneous(PROJ, np.array(verts))
        out = _clip_polygon_homogeneous(hom)
        for v in out:
            w = v[3]
            assert w >= -1e-9
            for axis in range(3):
                assert abs(v[axis]) <= w + 1e-6 * max(1.0, w)
