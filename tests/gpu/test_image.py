"""PPM writer / ASCII preview tests."""

import numpy as np
import pytest

from repro.gpu.image import ascii_preview, load_ppm, save_ppm, to_ppm_bytes


class TestPPM:
    def test_roundtrip(self, tmp_path):
        rng = np.random.RandomState(0)
        img = rng.uniform(0, 1, size=(12, 17, 3))
        path = save_ppm(img, tmp_path / "frame.ppm")
        back = load_ppm(path)
        assert back.shape == img.shape
        assert np.abs(back - img).max() <= 0.5 / 255 + 1e-9

    def test_header(self):
        data = to_ppm_bytes(np.zeros((2, 3, 3)))
        assert data.startswith(b"P6\n3 2\n255\n")
        assert len(data) == len(b"P6\n3 2\n255\n") + 2 * 3 * 3

    def test_values_clipped(self):
        img = np.array([[[2.0, -1.0, 0.5]]])
        data = to_ppm_bytes(img)
        assert data[-3:] == bytes([255, 0, 128])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            to_ppm_bytes(np.zeros((4, 4)))

    def test_load_rejects_non_ppm(self, tmp_path):
        p = tmp_path / "bad.ppm"
        p.write_bytes(b"JUNK")
        with pytest.raises(ValueError):
            load_ppm(p)


class TestAsciiPreview:
    def test_dimensions(self):
        art = ascii_preview(np.zeros((100, 200, 3)), width=40, height=10)
        lines = art.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_black_is_spaces_white_is_dense(self):
        black = ascii_preview(np.zeros((8, 8, 3)), width=4, height=2)
        assert set(black) <= {" ", "\n"}
        white = ascii_preview(np.ones((8, 8, 3)), width=4, height=2)
        assert "@" in white

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ascii_preview(np.zeros((4, 4)))
