"""Vertex stage tests."""

import math

import numpy as np
import pytest

from repro.geometry.primitives import make_box
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.caches import Cache
from repro.gpu.commands import DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.shading import shade_draws, vertex_stage_cycles
from repro.gpu.stats import GPUStats

CFG = GPUConfig().with_screen(64, 64)


def frame_of(draws) -> Frame:
    view = Mat4.look_at(Vec3(0, 0, 5), Vec3(0, 0, 0), Vec3(0, 1, 0))
    proj = Mat4.perspective(math.radians(60), 1.0, 0.1, 100.0)
    return Frame(draws=tuple(draws), view=view, projection=proj)


class TestTransforms:
    def test_clip_positions_match_mvp(self):
        model = Mat4.translation(Vec3(1, 0, 0))
        frame = frame_of([DrawCommand(make_box(), model)])
        shaded = shade_draws(frame, CFG, GPUStats())
        mvp = frame.projection @ frame.view @ model
        from repro.geometry.vec import transform_points_homogeneous

        expected = transform_points_homogeneous(mvp, make_box().vertices)
        assert np.allclose(shaded[0].clip_positions, expected)

    def test_draw_indices_sequential(self):
        frame = frame_of([DrawCommand(make_box(), Mat4.identity())] * 3)
        shaded = shade_draws(frame, CFG, GPUStats())
        assert [s.draw_index for s in shaded] == [0, 1, 2]


class TestCounting:
    def test_vertex_counts(self):
        frame = frame_of([DrawCommand(make_box(), Mat4.identity())])
        stats = GPUStats()
        shade_draws(frame, CFG, stats)
        assert stats.vertices_shaded == 8
        assert stats.vertices_fetched == 36  # 12 faces x 3 indices
        assert stats.vertex_cache_accesses == 36

    def test_vertex_cache_reuse_within_draw(self):
        frame = frame_of([DrawCommand(make_box(), Mat4.identity())])
        stats = GPUStats()
        shade_draws(frame, CFG, stats)
        # 8 vertices x 32 B = 256 B = at most 4 cold-missed lines.
        assert stats.vertex_cache_misses <= 4

    def test_draws_do_not_alias_in_cache(self):
        frame = frame_of([DrawCommand(make_box(), Mat4.identity())] * 2)
        stats = GPUStats()
        shade_draws(frame, CFG, stats)
        assert stats.vertices_shaded == 16

    def test_cycles_scale_with_vertices(self):
        stats1 = GPUStats()
        shade_draws(frame_of([DrawCommand(make_box(), Mat4.identity())]), CFG, stats1)
        stats2 = GPUStats()
        shade_draws(
            frame_of([DrawCommand(make_box(), Mat4.identity())] * 4), CFG, stats2
        )
        assert vertex_stage_cycles(stats2, CFG) > vertex_stage_cycles(stats1, CFG)

    def test_explicit_cache_accumulates(self):
        cache = Cache(CFG.vertex_cache)
        frame = frame_of([DrawCommand(make_box(), Mat4.identity())])
        shade_draws(frame, CFG, GPUStats(), cache)
        assert cache.accesses == 36
