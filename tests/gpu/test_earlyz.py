"""Early depth test: vectorized pass vs a literal sequential reference."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.config import GPUConfig
from repro.gpu.earlyz import depth_test
from repro.gpu.raster import FragmentSoup
from repro.gpu.stats import GPUStats

CFG = GPUConfig().with_screen(32, 32)


def make_frags(x, y, z, tagged=None, draw_index=None):
    n = len(x)
    return FragmentSoup(
        x=np.array(x, dtype=np.int32),
        y=np.array(y, dtype=np.int32),
        z=np.array(z, dtype=np.float64),
        object_id=np.full(n, -1, dtype=np.int64),
        front=np.ones(n, dtype=bool),
        tagged=np.array(tagged if tagged is not None else [False] * n),
        draw_index=np.array(draw_index if draw_index is not None else [0] * n),
        tri_index=np.arange(n, dtype=np.int64),
    )


def reference_depth_test(frags, width):
    """Literal sequential z-buffer (LESS, cleared to 1.0)."""
    buffer = {}
    passed = np.zeros(frags.count, dtype=bool)
    for i in range(frags.count):
        if frags.tagged[i]:
            continue
        key = (int(frags.x[i]), int(frags.y[i]))
        current = buffer.get(key, 1.0)
        if frags.z[i] < current:
            passed[i] = True
            buffer[key] = frags.z[i]
    return passed


class TestBasics:
    def test_single_fragment_passes(self):
        frags = make_frags([3], [4], [0.5])
        result = depth_test(frags, CFG, GPUStats())
        assert result.passed[0]
        assert result.z_buffer[4, 3] == pytest.approx(0.5)
        assert result.winner[4, 3] == 0

    def test_far_plane_fragment_fails(self):
        # Clear value is 1.0 and the test is LESS.
        frags = make_frags([3], [4], [1.0])
        result = depth_test(frags, CFG, GPUStats())
        assert not result.passed[0]
        assert result.winner[4, 3] == -1

    def test_occluded_fragment_fails(self):
        frags = make_frags([3, 3], [4, 4], [0.2, 0.5])
        result = depth_test(frags, CFG, GPUStats())
        assert result.passed.tolist() == [True, False]

    def test_front_to_back_both_pass(self):
        frags = make_frags([3, 3], [4, 4], [0.5, 0.2])
        result = depth_test(frags, CFG, GPUStats())
        assert result.passed.tolist() == [True, True]
        assert result.winner[4, 3] == 1

    def test_equal_depth_second_fails(self):
        frags = make_frags([3, 3], [4, 4], [0.5, 0.5])
        result = depth_test(frags, CFG, GPUStats())
        assert result.passed.tolist() == [True, False]

    def test_tagged_fragments_skip_test(self):
        frags = make_frags([3, 3], [4, 4], [0.2, 0.5], tagged=[True, False])
        stats = GPUStats()
        result = depth_test(frags, CFG, stats)
        # The tagged front fragment never wrote the buffer.
        assert result.passed.tolist() == [False, True]
        assert stats.early_z_tests == 1

    def test_different_pixels_independent(self):
        frags = make_frags([1, 2], [1, 1], [0.9, 0.1])
        result = depth_test(frags, CFG, GPUStats())
        assert result.passed.all()

    def test_empty(self):
        result = depth_test(FragmentSoup.empty(), CFG, GPUStats())
        assert result.passed.size == 0
        assert (result.z_buffer == 1.0).all()

    def test_stats(self):
        frags = make_frags([3, 3, 3], [4, 4, 4], [0.5, 0.3, 0.8])
        stats = GPUStats()
        depth_test(frags, CFG, stats)
        assert stats.early_z_tests == 3
        assert stats.early_z_passes == 2


class TestAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=7),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_matches_sequential_reference(self, rows):
        x = [r[0] for r in rows]
        y = [r[1] for r in rows]
        z = [r[2] for r in rows]
        tagged = [r[3] for r in rows]
        frags = make_frags(x, y, z, tagged=tagged)
        result = depth_test(frags, CFG, GPUStats())
        expected = reference_depth_test(frags, CFG.screen_width)
        assert result.passed.tolist() == expected.tolist()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_zbuffer_is_per_pixel_minimum(self, seed):
        rng = np.random.RandomState(seed)
        n = 200
        frags = make_frags(
            rng.randint(0, 32, n), rng.randint(0, 32, n), rng.uniform(0, 1, n)
        )
        result = depth_test(frags, CFG, GPUStats())
        for pixel in range(20):
            px, py = rng.randint(0, 32), rng.randint(0, 32)
            mask = (frags.x == px) & (frags.y == py)
            expected = frags.z[mask].min() if mask.any() else 1.0
            assert result.z_buffer[py, px] == pytest.approx(expected)
