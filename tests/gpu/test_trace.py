"""Trace record / replay tests."""

import json

import numpy as np
import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.gpu.trace import (
    decode_trace,
    load_trace,
    record_trace,
    replay_trace,
    save_trace,
)
from tests.conftest import two_boxes_frame

CFG = GPUConfig().with_screen(96, 64)


@pytest.fixture
def frames():
    return [two_boxes_frame(CFG, sep) for sep in (0.6, 0.9, 1.5)]


class TestRoundtrip:
    def test_decode_inverts_record(self, frames):
        rebuilt = decode_trace(record_trace(frames))
        assert len(rebuilt) == len(frames)
        for original, copy in zip(frames, rebuilt):
            assert len(copy.draws) == len(original.draws)
            for d0, d1 in zip(original.draws, copy.draws):
                assert np.allclose(d0.mesh.vertices, d1.mesh.vertices)
                assert np.array_equal(d0.mesh.faces, d1.mesh.faces)
                assert np.allclose(d0.model.a, d1.model.a)
                assert d0.object_id == d1.object_id
                assert d0.cull_mode == d1.cull_mode
            assert np.allclose(original.view.a, copy.view.a)
            assert np.allclose(original.projection.a, copy.projection.a)

    def test_meshes_deduplicated(self, frames):
        doc = record_trace(frames)
        # Each frame draws the same box mesh twice, across 3 frames.
        assert len(doc["meshes"]) == 1

    def test_document_is_json_serializable(self, frames):
        text = json.dumps(record_trace(frames))
        assert decode_trace(json.loads(text))

    def test_file_roundtrip(self, frames, tmp_path):
        path = save_trace(frames, tmp_path / "run.trace.json")
        rebuilt = load_trace(path)
        assert len(rebuilt) == 3

    def test_version_check(self, frames):
        doc = record_trace(frames)
        doc["version"] = 99
        with pytest.raises(ValueError):
            decode_trace(doc)

    def test_format_check(self):
        with pytest.raises(ValueError):
            decode_trace({"format": "gltrace"})


class TestReplay:
    def test_replay_matches_direct_render(self, frames):
        direct = [GPU(CFG).render_frame(f) for f in frames]
        replayed = replay_trace(record_trace(frames), GPU(CFG))
        assert replayed.frame_count == 3
        for d, r in zip(direct, replayed.results):
            assert d.stats.fragments_produced == r.stats.fragments_produced
            assert d.stats.gpu_cycles == r.stats.gpu_cycles
            assert d.collisions.as_sorted_pairs() == r.collisions.as_sorted_pairs()

    def test_replay_pairs_per_frame(self, frames):
        replayed = replay_trace(frames, GPU(CFG))
        assert replayed.pairs_per_frame == [{(1, 2)}, {(1, 2)}, set()]

    def test_replay_under_different_config(self, frames, tmp_path):
        """The trace-driven workflow: capture once, re-simulate with a
        different RBCD configuration."""
        path = save_trace(frames, tmp_path / "t.json")
        small = GPU(CFG.with_rbcd(list_length=2), rbcd_enabled=True)
        large = GPU(CFG.with_rbcd(list_length=16, ff_stack_entries=16))
        result_small = replay_trace(path, small)
        result_large = replay_trace(path, large)
        assert (
            result_small.total_stats.zeb_overflow_events
            >= result_large.total_stats.zeb_overflow_events
        )

    def test_total_stats_accumulates(self, frames):
        replayed = replay_trace(frames, GPU(CFG))
        assert replayed.total_stats.frames == 3
