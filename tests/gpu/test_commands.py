"""Command-stream tests."""

import pytest

from repro.geometry.primitives import make_box
from repro.geometry.vec import Mat4
from repro.gpu.commands import (
    CommandStreamStats,
    CullMode,
    DrawCommand,
    Frame,
)


def draw(object_id=None) -> DrawCommand:
    return DrawCommand(make_box(), Mat4.identity(), object_id=object_id)


class TestDrawCommand:
    def test_collisionable_flag_follows_object_id(self):
        assert not draw().collisionable
        assert draw(object_id=3).collisionable

    def test_negative_object_id_rejected(self):
        with pytest.raises(ValueError):
            draw(object_id=-1)

    def test_default_cull_mode_is_back(self):
        assert draw().cull_mode is CullMode.BACK


class TestFrame:
    def make_frame(self, draws) -> Frame:
        return Frame(draws=draws, view=Mat4.identity(), projection=Mat4.identity())

    def test_duplicate_object_ids_rejected(self):
        with pytest.raises(ValueError):
            self.make_frame([draw(object_id=1), draw(object_id=1)])

    def test_non_collisionable_draws_dont_conflict(self):
        frame = self.make_frame([draw(), draw(), draw(object_id=1)])
        assert len(frame.collisionable_draws) == 1

    def test_draws_stored_as_tuple(self):
        frame = self.make_frame([draw()])
        assert isinstance(frame.draws, tuple)

    def test_view_projection_composes(self):
        from repro.geometry.vec import Vec3

        frame = Frame(
            draws=(draw(),),
            view=Mat4.translation(Vec3(0, 0, -5)),
            projection=Mat4.scaling(2.0),
        )
        vp = frame.view_projection()
        assert vp.transform_point(Vec3(0, 0, 0)).is_close(Vec3(0, 0, -10))

    def test_raster_only_default_false(self):
        assert not self.make_frame([draw()]).raster_only


class TestCommandStreamStats:
    def test_counts(self):
        frame = Frame(
            draws=(draw(), draw(object_id=1), draw(object_id=2)),
            view=Mat4.identity(),
            projection=Mat4.identity(),
        )
        stats = CommandStreamStats.of(frame)
        assert stats.draw_count == 3
        assert stats.collisionable_draw_count == 2
        assert stats.triangle_count == 36
        assert stats.collisionable_triangle_count == 24
        assert stats.vertex_count == 24
