"""GPUConfig / RBCDConfig tests."""

import pytest

from repro.gpu.config import CacheConfig, GPUConfig, QueueConfig, RBCDConfig


class TestGPUConfig:
    def test_table2_defaults(self):
        cfg = GPUConfig()
        assert cfg.frequency_hz == 400e6
        assert cfg.screen_width == 800 and cfg.screen_height == 480
        assert cfg.tile_size == 16
        assert cfg.num_fragment_processors == 4
        assert cfg.rasterizer_frags_per_cycle == 4.0
        assert cfg.l2_cache.size_bytes == 128 * 1024

    def test_tile_grid(self):
        cfg = GPUConfig()
        assert cfg.tiles_x == 50
        assert cfg.tiles_y == 30
        assert cfg.tile_count == 1500
        assert cfg.tile_pixels == 256

    def test_tile_grid_rounds_up(self):
        cfg = GPUConfig().with_screen(17, 33)
        assert cfg.tiles_x == 2
        assert cfg.tiles_y == 3

    def test_cycles_to_seconds(self):
        assert GPUConfig().cycles_to_seconds(400e6) == pytest.approx(1.0)

    def test_with_rbcd_replaces_only_rbcd(self):
        cfg = GPUConfig().with_rbcd(zeb_count=1, list_length=4)
        assert cfg.rbcd.zeb_count == 1
        assert cfg.rbcd.list_length == 4
        assert cfg.screen_width == 800

    def test_invalid_screen(self):
        with pytest.raises(ValueError):
            GPUConfig().with_screen(0, 480)

    def test_mem_latency_avg(self):
        assert GPUConfig().mem_latency_avg_cycles == pytest.approx(75.0)


class TestRBCDConfig:
    def test_zeb_size_matches_paper(self):
        # "For M=8 the size of the ZEB would be 8 KB" (256 lists x 8 x 32b).
        cfg = RBCDConfig()
        assert cfg.zeb_size_bytes(256) == 8 * 1024

    def test_packing_must_fill_element(self):
        with pytest.raises(ValueError):
            RBCDConfig(z_bits=20, id_bits=13)  # 20+13+1 != 32

    def test_zeb_count_validation(self):
        with pytest.raises(ValueError):
            RBCDConfig(zeb_count=0)

    def test_list_length_validation(self):
        with pytest.raises(ValueError):
            RBCDConfig(list_length=0)

    def test_ff_stack_validation(self):
        with pytest.raises(ValueError):
            RBCDConfig(ff_stack_entries=0)


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig("t", 4 * 1024, 64, 2)
        assert cache.num_sets == 32

    def test_size_divisibility(self):
        with pytest.raises(ValueError):
            CacheConfig("t", 1000, 64, 2)

    def test_queue_config_fields(self):
        q = QueueConfig("fragment", 64, 233)
        assert q.entries == 64 and q.bytes_per_entry == 233
