"""Set-associative LRU cache model tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.caches import Cache
from repro.gpu.config import CacheConfig


def small_cache(ways: int = 2, sets: int = 4, line: int = 64) -> Cache:
    return Cache(CacheConfig("test", line * ways * sets, line, ways))


class TestBasics:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True
        assert cache.access(63) is True   # same line
        assert cache.access(64) is False  # next line

    def test_miss_rate(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == pytest.approx(0.5)
        assert cache.hits == 1

    def test_reset_stats_keeps_contents(self):
        cache = small_cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.access(0) is True  # line still resident

    def test_flush_evicts(self):
        cache = small_cache()
        cache.access(0)
        cache.flush()
        assert cache.access(0) is False

    def test_empty_miss_rate_zero(self):
        assert small_cache().miss_rate == 0.0


class TestAssociativityAndLRU:
    def test_two_way_holds_two_conflicting_lines(self):
        cache = small_cache(ways=2, sets=4)
        # Lines 0 and 4 map to the same set (4 sets).
        cache.access_line(0)
        cache.access_line(4)
        assert cache.access_line(0) is True
        assert cache.access_line(4) is True

    def test_lru_evicts_least_recent(self):
        cache = small_cache(ways=2, sets=4)
        cache.access_line(0)
        cache.access_line(4)
        cache.access_line(0)      # 0 now MRU
        cache.access_line(8)      # evicts 4
        assert cache.access_line(0) is True
        assert cache.access_line(4) is False

    def test_direct_mapped_conflicts(self):
        cache = small_cache(ways=1, sets=4)
        cache.access_line(0)
        cache.access_line(4)      # evicts 0
        assert cache.access_line(0) is False


class TestBatchAccess:
    def test_access_range_counts_lines(self):
        cache = small_cache(sets=64)
        misses = cache.access_range(0, 256)  # 4 lines
        assert misses == 4
        assert cache.access_range(0, 256) == 0

    def test_access_range_empty(self):
        assert small_cache().access_range(0, 0) == 0

    def test_access_many_matches_sequential(self):
        rng = np.random.RandomState(0)
        addresses = rng.randint(0, 8 * 1024, size=500)
        a = small_cache(ways=2, sets=8)
        b = small_cache(ways=2, sets=8)
        batch_misses = a.access_many(addresses)
        seq_misses = sum(0 if b.access(int(addr)) else 1 for addr in addresses)
        assert batch_misses == seq_misses
        assert a.accesses == b.accesses == 500

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=4095), min_size=1, max_size=120))
    def test_access_many_equivalence_property(self, addresses):
        a = small_cache(ways=2, sets=4)
        b = small_cache(ways=2, sets=4)
        batch = a.access_many(np.array(addresses))
        seq = sum(0 if b.access(addr) else 1 for addr in addresses)
        assert batch == seq

    def test_streaming_pattern_one_miss_per_line(self):
        cache = small_cache(sets=64)
        addresses = np.arange(0, 64 * 16, 4)  # sequential words
        misses = cache.access_many(addresses)
        assert misses == 16
