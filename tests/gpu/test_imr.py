"""IMR rendering-mode tests (Section 3.1's baseline contrast)."""

import numpy as np
import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from tests.conftest import two_boxes_frame

CFG = GPUConfig().with_screen(128, 96)


class TestIMRMode:
    def test_rbcd_rejected_in_imr(self):
        with pytest.raises(ValueError):
            GPU(CFG, rbcd_enabled=True, rendering_mode="imr")

    def test_same_image_as_tbr(self):
        frame = two_boxes_frame(CFG, 0.7)
        tbr = GPU(CFG, rbcd_enabled=False, rendering_mode="tbr").render_frame(frame)
        imr = GPU(CFG, rbcd_enabled=False, rendering_mode="imr").render_frame(frame)
        assert np.array_equal(tbr.color, imr.color)
        assert np.array_equal(tbr.z_buffer, imr.z_buffer)

    def test_no_tile_traffic(self):
        frame = two_boxes_frame(CFG, 0.7)
        imr = GPU(CFG, rbcd_enabled=False, rendering_mode="imr").render_frame(frame)
        assert imr.stats.tile_cache_stores == 0
        assert imr.stats.tile_cache_loads == 0
        assert imr.stats.prim_tile_pairs == 0

    def test_no_collisions_reported(self):
        frame = two_boxes_frame(CFG, 0.7)
        imr = GPU(CFG, rbcd_enabled=False, rendering_mode="imr").render_frame(frame)
        assert imr.collisions is None

    def test_overdraw_writes_offchip(self):
        """Section 3.1: IMR pays pixel overdraw in off-chip writes that
        TBR keeps in the local tile buffer."""
        from repro.geometry.primitives import make_box
        from repro.geometry.vec import Mat4, Vec3
        from repro.gpu.commands import DrawCommand, Frame
        from tests.conftest import simple_projection, simple_view

        # Heavy overdraw: three stacked boxes drawn back to front.
        draws = tuple(
            DrawCommand(make_box(Vec3(0.8, 0.8, 0.8)),
                        Mat4.translation(Vec3(0, 0, z)))
            for z in (-1.5, 0.0, 1.5)
        )
        frame = Frame(
            draws=draws, view=simple_view(),
            projection=simple_projection(CFG.screen_width / CFG.screen_height),
        )
        tbr = GPU(CFG, rbcd_enabled=False, rendering_mode="tbr").render_frame(frame)
        imr = GPU(CFG, rbcd_enabled=False, rendering_mode="imr").render_frame(frame)
        # TBR: one color write per covered pixel; IMR: one per pass.
        covered = int((tbr.z_buffer < 1.0).sum())
        assert tbr.stats.color_writes == covered
        assert imr.stats.early_z_passes > covered  # real overdraw
        # Pixel-side DRAM traffic: IMR pays more on this scene.
        tbr_pixel_bytes = tbr.stats.color_writes * 4
        imr_pixel_bytes = imr.stats.dram_bytes_written
        assert imr_pixel_bytes > tbr_pixel_bytes

    def test_geometry_traffic_saved_by_imr(self):
        """The other side of the trade: TBR stores/loads polygon lists."""
        frame = two_boxes_frame(CFG, 0.7)
        tbr = GPU(CFG, rbcd_enabled=False, rendering_mode="tbr").render_frame(frame)
        imr = GPU(CFG, rbcd_enabled=False, rendering_mode="imr").render_frame(frame)
        assert tbr.stats.tile_cache_stores > 0
        assert imr.stats.tile_cache_stores == 0
