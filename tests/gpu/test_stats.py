"""GPUStats container tests."""

import pytest

from repro.gpu.stats import GPUStats, TileStats


class TestAccumulation:
    def test_addition_sums_every_field(self):
        a = GPUStats(frames=1, fragments_produced=10, gpu_cycles=100.0)
        b = GPUStats(frames=1, fragments_produced=5, gpu_cycles=50.0)
        c = a + b
        assert c.frames == 2
        assert c.fragments_produced == 15
        assert c.gpu_cycles == 150.0
        # Originals untouched.
        assert a.fragments_produced == 10

    def test_sum_builtin(self):
        stats = [GPUStats(frames=1, vertices_shaded=3)] * 4
        total = sum(stats)
        assert total.frames == 4
        assert total.vertices_shaded == 12

    def test_add_non_stats_rejected(self):
        with pytest.raises(TypeError):
            GPUStats() + 5


class TestDerived:
    def test_overflow_rate(self):
        stats = GPUStats(zeb_insertions=200, zeb_overflow_events=10)
        assert stats.zeb_overflow_rate == pytest.approx(0.05)

    def test_overflow_rate_empty(self):
        assert GPUStats().zeb_overflow_rate == 0.0

    def test_early_z_pass_rate(self):
        stats = GPUStats(early_z_tests=100, early_z_passes=80)
        assert stats.early_z_pass_rate == pytest.approx(0.8)
        assert GPUStats().early_z_pass_rate == 0.0

    def test_as_dict_roundtrip(self):
        stats = GPUStats(fragments_produced=7)
        d = stats.as_dict()
        assert d["fragments_produced"] == 7
        assert "gpu_cycles" in d

    def test_summary_shows_nonzero_fields_only(self):
        stats = GPUStats(fragments_produced=7)
        text = stats.summary()
        assert "fragments_produced" in text
        assert "texture_accesses" not in text


class TestTileStats:
    def test_defaults(self):
        tile = TileStats(tile_index=3)
        assert tile.tile_index == 3
        assert tile.fragments == 0
