"""Property-based trace roundtrip tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.commands import CullMode, DrawCommand, Frame
from repro.gpu.trace import decode_trace, record_trace

coords = st.floats(min_value=-50, max_value=50, allow_nan=False)


@st.composite
def random_mesh(draw):
    n_verts = draw(st.integers(min_value=3, max_value=12))
    verts = [[draw(coords), draw(coords), draw(coords)] for _ in range(n_verts)]
    n_faces = draw(st.integers(min_value=1, max_value=10))
    faces = [
        [draw(st.integers(0, n_verts - 1)) for _ in range(3)]
        for _ in range(n_faces)
    ]
    return TriangleMesh(np.array(verts), np.array(faces))


@st.composite
def random_frame(draw):
    n_draws = draw(st.integers(min_value=1, max_value=4))
    draws = []
    for i in range(n_draws):
        mesh = draw(random_mesh())
        model = Mat4.translation(Vec3(draw(coords), draw(coords), draw(coords)))
        collisionable = draw(st.booleans())
        draws.append(
            DrawCommand(
                mesh=mesh,
                model=model,
                object_id=i if collisionable else None,
                cull_mode=draw(st.sampled_from(list(CullMode))),
                color=(draw(st.floats(0, 1)), draw(st.floats(0, 1)),
                       draw(st.floats(0, 1))),
                fragment_cycles=draw(
                    st.one_of(st.none(), st.floats(min_value=1, max_value=16))
                ),
            )
        )
    view = Mat4.look_at(Vec3(0, 0, 60), Vec3.zero(), Vec3.unit_y())
    proj = Mat4.perspective(math.radians(60), 1.0, 0.1, 200.0)
    return Frame(draws=tuple(draws), view=view, projection=proj,
                 raster_only=draw(st.booleans()))


@settings(max_examples=40, deadline=None)
@given(st.lists(random_frame(), min_size=1, max_size=3))
def test_trace_roundtrip_is_lossless(frames):
    rebuilt = decode_trace(record_trace(frames))
    assert len(rebuilt) == len(frames)
    for original, copy in zip(frames, rebuilt):
        assert copy.raster_only == original.raster_only
        assert np.array_equal(copy.view.a, original.view.a)
        assert np.array_equal(copy.projection.a, original.projection.a)
        assert len(copy.draws) == len(original.draws)
        for d0, d1 in zip(original.draws, copy.draws):
            assert np.array_equal(d0.mesh.vertices, d1.mesh.vertices)
            assert np.array_equal(d0.mesh.faces, d1.mesh.faces)
            assert np.array_equal(d0.model.a, d1.model.a)
            assert d0.object_id == d1.object_id
            assert d0.cull_mode == d1.cull_mode
            assert d0.color == d1.color
            assert d0.fragment_cycles == d1.fragment_cycles
