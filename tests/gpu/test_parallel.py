"""Parallel tile-execution engine: determinism and merge algebra.

The acceptance bar for the engine: rendering any frame with any
backend, worker count, or chunk size yields a ``FrameResult`` — pairs,
contact records, the full stats dict, simulated cycles — exactly equal
to the serial path's.
"""

import random

import numpy as np
import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.parallel import (
    ProcessPoolTileExecutor,
    SerialTileExecutor,
    ThreadPoolTileExecutor,
    chunk_tasks,
    gather_tile_tasks,
    make_executor,
    tile_registry_of,
    tile_stats_of,
)
from repro.gpu.pipeline import GPU
from repro.observability.counters import CounterRegistry
from repro.rbcd.unit import RBCDUnit
from repro.gpu.stats import GPUStats, TileStats
from tests.conftest import sphere_pair_frame, two_boxes_frame


def frame_fingerprint(result):
    report = result.collisions
    return {
        "pairs": report.as_sorted_pairs(),
        "contacts": {
            (p.id_a, p.id_b): [(c.x, c.y, c.z_front, c.z_back) for c in pts]
            for p, pts in report.contacts.items()
        },
        "pair_records_written": report.pair_records_written,
        "stats": result.stats.as_dict(),
        "gpu_cycles": result.gpu_cycles,
    }


class TestDeterminism:
    def test_worker_count_does_not_change_frame_result(self, small_config):
        """The issue's regression check: 1, 2 and 8 workers ≡ serial."""
        frame = sphere_pair_frame(small_config, 0.8)
        serial = frame_fingerprint(GPU(small_config).render_frame(frame))
        for workers in (1, 2, 8):
            config = small_config.with_executor(workers=workers, backend="process")
            with GPU(config) as gpu:
                parallel = frame_fingerprint(gpu.render_frame(frame))
            assert parallel == serial

    def test_thread_backend_matches_serial(self, small_config):
        frame = two_boxes_frame(small_config, 0.8)
        serial = frame_fingerprint(GPU(small_config).render_frame(frame))
        config = small_config.with_executor(workers=4, backend="thread")
        with GPU(config) as gpu:
            assert frame_fingerprint(gpu.render_frame(frame)) == serial

    @pytest.mark.parametrize("chunk", [1, 3, 64])
    def test_chunk_size_does_not_change_frame_result(self, small_config, chunk):
        frame = two_boxes_frame(small_config, 0.8)
        serial = frame_fingerprint(GPU(small_config).render_frame(frame))
        config = small_config.with_executor(
            workers=2, backend="thread", chunk_tiles=chunk
        )
        with GPU(config) as gpu:
            assert frame_fingerprint(gpu.render_frame(frame)) == serial

    def test_executor_reused_across_frames(self, small_config):
        config = small_config.with_executor(workers=2, backend="thread")
        with GPU(config) as gpu:
            first_executor = gpu.executor
            for separation in (0.6, 0.8, 1.5):
                frame = two_boxes_frame(small_config, separation)
                serial = frame_fingerprint(GPU(small_config).render_frame(frame))
                assert frame_fingerprint(gpu.render_frame(frame)) == serial
                assert gpu.executor is first_executor

    def test_stall_model_cycles_invariant_under_workers(self, small_config):
        # Simulated cycles come from per-tile timings, not wall clock:
        # the double-buffered-ZEB stall accounting must not move.
        frame = sphere_pair_frame(small_config, 0.7)
        serial = GPU(small_config).render_frame(frame)
        config = small_config.with_executor(workers=8, backend="process")
        with GPU(config) as gpu:
            parallel = gpu.render_frame(frame)
        assert parallel.stats.raster_stall_cycles == serial.stats.raster_stall_cycles
        assert parallel.stats.raster_pipeline_cycles == serial.stats.raster_pipeline_cycles
        assert parallel.stats.gpu_cycles == serial.stats.gpu_cycles


class TestStatsMergeAlgebra:
    @staticmethod
    def random_stats(rng):
        # Integer-valued fields keep float addition exact, so shuffled
        # merge orders must agree to the last bit.
        stats = GPUStats()
        for f in GPUStats.__dataclass_fields__:
            value = int(rng.randrange(0, 1000))
            current = getattr(stats, f)
            setattr(stats, f, float(value) if isinstance(current, float) else value)
        return stats

    def test_add_commutative_and_associative_over_shuffled_tiles(self):
        rng = random.Random(3)
        parts = [self.random_stats(rng) for _ in range(12)]
        reference = GPUStats.sum(parts).as_dict()
        for seed in range(5):
            shuffled = parts[:]
            random.Random(seed).shuffle(shuffled)
            assert GPUStats.sum(shuffled).as_dict() == reference
        a, b = parts[0], parts[1]
        assert (a + b).as_dict() == (b + a).as_dict()
        assert ((a + b) + parts[2]).as_dict() == (a + (b + parts[2])).as_dict()

    def test_plain_sum_over_stats(self):
        rng = random.Random(1)
        parts = [self.random_stats(rng) for _ in range(4)]
        assert sum(parts).as_dict() == GPUStats.sum(parts).as_dict()

    def test_sum_of_empty_iterable_is_zero_stats(self):
        total = GPUStats.sum([])
        assert isinstance(total, GPUStats)
        assert total.as_dict() == GPUStats().as_dict()

    def test_radd_rejects_nonzero_garbage(self):
        with pytest.raises(TypeError):
            1 + GPUStats()
        with pytest.raises(TypeError):
            "x" + GPUStats()

    def test_tile_stats_addition(self):
        a = TileStats(tile_index=4, fragments=10, overlap_cycles=2.0)
        b = TileStats(tile_index=2, fragments=5, overlap_cycles=1.5)
        total = sum([a, b])
        assert total.tile_index == 2
        assert total.fragments == 15
        assert total.overlap_cycles == 3.5
        assert sum([], TileStats()).fragments == 0


class TestExecutorMachinery:
    def test_factory_maps_config_to_backend(self):
        base = GPUConfig()
        assert isinstance(make_executor(base), SerialTileExecutor)
        assert isinstance(
            make_executor(base.with_executor(workers=2, backend="thread")),
            ThreadPoolTileExecutor,
        )
        assert isinstance(
            make_executor(base.with_executor(workers=2)),
            ProcessPoolTileExecutor,
        )
        # One worker degenerates to serial whatever the backend says.
        assert isinstance(
            make_executor(base.with_executor(workers=1, backend="thread")),
            SerialTileExecutor,
        )

    def test_config_validates_executor_fields(self):
        with pytest.raises(ValueError):
            GPUConfig(executor_backend="gpu")
        with pytest.raises(ValueError):
            GPUConfig(executor_workers=0)
        with pytest.raises(ValueError):
            GPUConfig(executor_chunk_tiles=0)

    def test_chunk_tasks_preserves_order_and_content(self, small_config):
        frame = two_boxes_frame(small_config, 0.8)
        result = GPU(small_config).render_frame(frame, keep_fragments=True)
        tasks = gather_tile_tasks(result.fragments, small_config)
        chunks = chunk_tasks(tasks, 3)
        assert [t for chunk in chunks for t in chunk] == tasks
        assert all(len(chunk) <= 3 for chunk in chunks)
        with pytest.raises(ValueError):
            chunk_tasks(tasks, 0)

    def test_run_on_empty_task_list(self):
        config = GPUConfig()
        assert SerialTileExecutor().run(config, []) == []
        with ThreadPoolTileExecutor(2) as executor:
            assert executor.run(config, []) == []

    def test_close_is_idempotent_and_reopenable(self):
        config = GPUConfig().with_screen(64, 32).with_executor(
            workers=2, backend="thread"
        )
        executor = ThreadPoolTileExecutor(2)
        executor.close()
        executor.close()
        # A closed pool is lazily rebuilt on next use.
        soup_gpu = GPU(config)
        frame_result = GPU(config.with_executor(workers=1)).render_frame(
            two_boxes_frame(config, 0.8), keep_fragments=True
        )
        tasks = gather_tile_tasks(frame_result.fragments, config)
        results = executor.run(config, tasks)
        assert [r.tile_index for r in results] == [t.tile_index for t in tasks]
        executor.close()
        soup_gpu.close()

    def test_tile_stats_of_result(self, small_config):
        result = GPU(small_config).render_frame(
            two_boxes_frame(small_config, 0.8), keep_fragments=True
        )
        tasks = gather_tile_tasks(result.fragments, small_config)
        tile_results = SerialTileExecutor().run(small_config, tasks)
        stats = [tile_stats_of(r) for r in tile_results]
        assert [s.tile_index for s in stats] == [t.tile_index for t in tasks]
        total = sum(stats, TileStats())
        assert total.collisionable_fragments == sum(
            t.fragment_count for t in tasks
        )


class TestShardedMergeAlgebra:
    """Counter merges must be associative and commutative over any
    randomized sharding of the per-tile results — the property that
    lets the parallel executor group tiles arbitrarily and still merge
    to the serial totals."""

    @staticmethod
    def random_tile_stats(rng):
        stats = TileStats(tile_index=rng.randrange(0, 64))
        for f in TileStats.__dataclass_fields__:
            if f == "tile_index":
                continue
            value = rng.randrange(0, 500)
            current = getattr(stats, f)
            setattr(stats, f, float(value) if isinstance(current, float) else value)
        return stats

    @staticmethod
    def shard(items, rng, num_shards):
        shards = [[] for _ in range(num_shards)]
        for item in items:
            shards[rng.randrange(num_shards)].append(item)
        return [s for s in shards if s]

    def test_gpu_stats_sharded_merge_matches_flat_sum(self):
        rng = random.Random(11)
        parts = [TestStatsMergeAlgebra.random_stats(rng) for _ in range(24)]
        reference = GPUStats.sum(parts).as_dict()
        for seed in range(6):
            shard_rng = random.Random(seed)
            shards = self.shard(parts, shard_rng, shard_rng.randrange(2, 7))
            shard_rng.shuffle(shards)
            merged = GPUStats.sum(GPUStats.sum(s) for s in shards)
            assert merged.as_dict() == reference

    def test_tile_stats_sharded_merge_matches_flat_sum(self):
        rng = random.Random(12)
        parts = [self.random_tile_stats(rng) for _ in range(24)]
        reference = TileStats.sum(parts).as_dict()
        for seed in range(6):
            shard_rng = random.Random(seed)
            shards = self.shard(parts, shard_rng, shard_rng.randrange(2, 7))
            shard_rng.shuffle(shards)
            merged = TileStats.sum(TileStats.sum(s) for s in shards)
            assert merged.as_dict() == reference
        a, b, c = parts[:3]
        assert (a + b).as_dict() == (b + a).as_dict()
        assert ((a + b) + c).as_dict() == (a + (b + c)).as_dict()

    def test_tile_registries_shard_merge_matches_unit_counters(self):
        # Real per-tile results from a rendered frame: merging their
        # registry views in any sharding equals the owning RBCD unit's
        # counters after the serial absorb loop.
        config = GPUConfig().with_screen(160, 96)
        gpu = GPU(config, rbcd_enabled=True)
        result = gpu.render_frame(
            two_boxes_frame(config, 0.8), keep_fragments=True
        )
        tasks = gather_tile_tasks(result.fragments, config)
        tiles = SerialTileExecutor().run(config, tasks)
        assert len(tiles) >= 2, "scene too small to exercise sharding"

        unit = RBCDUnit(config)
        for tile in tiles:
            unit.absorb(tile)
        expected = unit.counters().as_dict()

        registries = [tile_registry_of(t) for t in tiles]
        pair_names = [n for n in expected]
        for seed in range(5):
            shard_rng = random.Random(seed)
            shards = self.shard(registries, shard_rng, shard_rng.randrange(2, 5))
            shard_rng.shuffle(shards)
            merged = sum((sum(s) for s in shards), 0)
            merged_dict = merged.as_dict()
            assert {n: merged_dict[n] for n in pair_names} == expected

    def test_registry_add_commutative_and_associative(self):
        rng = random.Random(13)

        def random_registry():
            registry = CounterRegistry()
            for name in ("a.x", "a.y", "b.z"):
                registry.counter(name)
                registry.set(name, rng.randrange(0, 100))
            registry.counter("b.cycles", kind="float", unit="cycles")
            registry.set("b.cycles", float(rng.randrange(0, 100)))
            return registry

        a, b, c = (random_registry() for _ in range(3))
        assert (a + b).as_dict() == (b + a).as_dict()
        assert ((a + b) + c).as_dict() == (a + (b + c)).as_dict()
        assert (0 + a).as_dict() == a.as_dict()
        assert CounterRegistry.sum([a, b, c]).as_dict() == ((a + b) + c).as_dict()
