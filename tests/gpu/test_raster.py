"""Rasterizer tests: exact fragments, fill rule, depth interpolation."""

import numpy as np
import pytest

from repro.gpu.assembly import TriangleSoup
from repro.gpu.config import GPUConfig
from repro.gpu.raster import (
    FRAGMENT_DTYPES,
    FragmentSoup,
    _rasterize_triangle,
    rasterize,
)
from repro.gpu.stats import GPUStats

CFG = GPUConfig().with_screen(64, 64)


def soup_from(xy_list, z_list, object_ids=None, fronts=None, tagged=None):
    n = len(xy_list)
    return TriangleSoup(
        xy=np.array(xy_list, dtype=np.float64),
        z=np.array(z_list, dtype=np.float64),
        object_id=np.array(object_ids if object_ids is not None else [-1] * n),
        front=np.array(fronts if fronts is not None else [True] * n),
        tagged=np.array(tagged if tagged is not None else [False] * n),
        draw_index=np.zeros(n, dtype=np.int64),
    )


class TestSingleTriangle:
    def test_axis_aligned_square_coverage(self):
        # Two triangles forming the pixel-aligned square [8, 16) x [8, 16).
        tri1 = [[8.0, 8.0], [16.0, 8.0], [8.0, 16.0]]
        tri2 = [[16.0, 8.0], [16.0, 16.0], [8.0, 16.0]]
        frags = rasterize(
            soup_from([tri1, tri2], [[0.5] * 3] * 2), CFG, GPUStats()
        )
        covered = set(zip(frags.x.tolist(), frags.y.tolist()))
        expected = {(x, y) for x in range(8, 16) for y in range(8, 16)}
        assert covered == expected
        # The shared diagonal must not double-produce fragments.
        assert frags.count == 64

    def test_shared_vertical_edge_no_double_coverage(self):
        left = [[4.0, 4.0], [10.0, 4.0], [10.0, 12.0]]
        right = [[10.0, 4.0], [16.0, 4.0], [10.0, 12.0]]
        frags = rasterize(soup_from([left, right], [[0.5] * 3] * 2), CFG, GPUStats())
        pixels = list(zip(frags.x.tolist(), frags.y.tolist()))
        assert len(pixels) == len(set(pixels)), "shared edge produced duplicates"

    def test_tiny_triangle_between_pixel_centers(self):
        tri = [[5.1, 5.1], [5.3, 5.1], [5.2, 5.3]]
        result = _rasterize_triangle(np.array(tri), np.array([0.5] * 3), 64, 64)
        assert result is None

    def test_degenerate_returns_none(self):
        tri = np.array([[1.0, 1.0], [5.0, 5.0], [9.0, 9.0]])
        assert _rasterize_triangle(tri, np.array([0.5] * 3), 64, 64) is None

    def test_offscreen_clamped(self):
        tri = [[-10.0, -10.0], [5.0, -10.0], [-10.0, 5.0]]
        frags = rasterize(soup_from([tri], [[0.5] * 3]), CFG, GPUStats())
        assert (frags.x >= 0).all() and (frags.y >= 0).all()

    def test_winding_does_not_change_coverage(self):
        ccw = [[4.0, 4.0], [20.0, 4.0], [4.0, 20.0]]
        cw = [ccw[0], ccw[2], ccw[1]]
        a = rasterize(soup_from([ccw], [[0.5] * 3]), CFG, GPUStats())
        b = rasterize(soup_from([cw], [[0.5] * 3]), CFG, GPUStats())
        pix_a = set(zip(a.x.tolist(), a.y.tolist()))
        pix_b = set(zip(b.x.tolist(), b.y.tolist()))
        assert pix_a == pix_b


class TestDepthInterpolation:
    def test_constant_depth(self):
        tri = [[4.0, 4.0], [20.0, 4.0], [4.0, 20.0]]
        frags = rasterize(soup_from([tri], [[0.25, 0.25, 0.25]]), CFG, GPUStats())
        assert np.allclose(frags.z, 0.25)

    def test_linear_gradient_in_x(self):
        # z = x / 64 across a right triangle.
        tri = [[0.0, 0.0], [64.0, 0.0], [0.0, 64.0]]
        frags = rasterize(soup_from([tri], [[0.0, 1.0, 0.0]]), CFG, GPUStats())
        expected = (frags.x + 0.5) / 64.0
        assert np.allclose(frags.z, expected, atol=1e-9)

    def test_vertex_depth_recovered_at_vertex_pixel(self):
        tri = [[2.0, 2.0], [30.0, 2.0], [2.0, 30.0]]
        frags = rasterize(soup_from([tri], [[0.1, 0.9, 0.5]]), CFG, GPUStats())
        idx = np.flatnonzero((frags.x == 2) & (frags.y == 2))
        assert idx.size == 1
        # Pixel centre (2.5, 2.5) is near vertex 0.
        assert frags.z[idx[0]] == pytest.approx(0.1, abs=0.05)


class TestAttributesAndStats:
    def test_attributes_propagate(self):
        tri = [[4.0, 4.0], [12.0, 4.0], [4.0, 12.0]]
        soup = soup_from(
            [tri, tri], [[0.5] * 3, [0.7] * 3],
            object_ids=[3, -1], fronts=[True, False], tagged=[False, True],
        )
        frags = rasterize(soup, CFG, GPUStats())
        first = frags.tri_index == 0
        assert (frags.object_id[first] == 3).all()
        assert frags.front[first].all()
        assert (~frags.tagged[first]).all()
        second = frags.tri_index == 1
        assert (frags.object_id[second] == -1).all()
        assert (~frags.front[second]).all()
        assert frags.tagged[second].all()

    def test_stats_counts(self):
        tri = [[4.0, 4.0], [12.0, 4.0], [4.0, 12.0]]
        stats = GPUStats()
        frags = rasterize(
            soup_from([tri], [[0.5] * 3], tagged=[True]), CFG, stats
        )
        assert stats.fragments_produced == frags.count
        assert stats.fragments_tagged_culled == frags.count

    def test_arrival_order_is_submission_order(self):
        tri = [[4.0, 4.0], [12.0, 4.0], [4.0, 12.0]]
        frags = rasterize(soup_from([tri, tri], [[0.5] * 3] * 2), CFG, GPUStats())
        switches = np.diff(frags.tri_index)
        assert (switches >= 0).all(), "fragments must arrive per-triangle in order"

    def test_empty_soup(self):
        frags = rasterize(TriangleSoup.empty(), CFG, GPUStats())
        assert frags.count == 0

    def test_tile_index(self):
        tri = [[0.0, 0.0], [40.0, 0.0], [0.0, 40.0]]
        frags = rasterize(soup_from([tri], [[0.5] * 3]), CFG, GPUStats())
        tiles = frags.tile_index(CFG)
        expected = (frags.y // 16).astype(np.int64) * CFG.tiles_x + frags.x // 16
        assert (tiles == expected).all()


class TestWatertightness:
    def test_fan_covers_quad_exactly_once(self):
        """A triangle fan must tile its polygon with no seams or overlap."""
        center = [16.0, 16.0]
        ring = [
            [4.0, 4.0], [28.0, 4.0], [28.0, 28.0], [4.0, 28.0], [4.0, 4.0]
        ]
        tris = []
        for i in range(4):
            tris.append([center, ring[i], ring[i + 1]])
        frags = rasterize(
            soup_from(tris, [[0.5] * 3] * 4), CFG, GPUStats()
        )
        pixels = list(zip(frags.x.tolist(), frags.y.tolist()))
        assert len(pixels) == len(set(pixels)), "fan overlap"
        expected = {(x, y) for x in range(4, 28) for y in range(4, 28)}
        assert set(pixels) == expected, "fan seam"


class TestFragmentDtypeContract:
    """Both FragmentSoup construction paths honour FRAGMENT_DTYPES.

    The populated path gathers fields from the TriangleSoup, so without
    explicit coercion its dtypes would drift with whatever the caller
    built the soup from (e.g. int32 object ids from a default
    ``np.array`` on Windows) — and then differ from ``empty()``,
    breaking concatenation and pickling invariants.
    """

    TRI = [[8.0, 8.0], [16.0, 8.0], [8.0, 16.0]]

    def test_empty_matches_contract(self):
        empty = FragmentSoup.empty()
        for name, dtype in FRAGMENT_DTYPES.items():
            assert getattr(empty, name).dtype == dtype, name

    def test_populated_matches_contract(self):
        frags = rasterize(
            soup_from([self.TRI], [[0.5] * 3], object_ids=[3]), CFG, GPUStats()
        )
        assert frags.count > 0
        for name, dtype in FRAGMENT_DTYPES.items():
            assert getattr(frags, name).dtype == dtype, name

    def test_populated_matches_contract_with_drifted_inputs(self):
        # A soup built with narrow/odd dtypes must still come out on
        # contract: rasterize() owns the coercion.
        soup = TriangleSoup(
            xy=np.array([self.TRI], dtype=np.float64),
            z=np.array([[0.5] * 3], dtype=np.float64),
            object_id=np.array([3], dtype=np.int16),
            front=np.array([1], dtype=np.uint8),
            tagged=np.array([0], dtype=np.int32),
            draw_index=np.zeros(1, dtype=np.int32),
        )
        frags = rasterize(soup, CFG, GPUStats())
        assert frags.count > 0
        for name, dtype in FRAGMENT_DTYPES.items():
            assert getattr(frags, name).dtype == dtype, name

    def test_empty_and_populated_concatenate(self):
        empty = FragmentSoup.empty()
        frags = rasterize(soup_from([self.TRI], [[0.5] * 3]), CFG, GPUStats())
        for name in FRAGMENT_DTYPES:
            merged = np.concatenate(
                [getattr(empty, name), getattr(frags, name)]
            )
            assert merged.dtype == FRAGMENT_DTYPES[name], name
