"""Fragment stage tests: shading cost and color resolution."""

import numpy as np
import pytest

from repro.geometry.primitives import make_box
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.commands import DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.fragment import fragment_shader_cycles_per_draw
from repro.gpu.pipeline import GPU
from tests.conftest import simple_projection, simple_view


CFG = GPUConfig().with_screen(96, 64)


def render(draws, raster_only=False):
    frame = Frame(
        draws=tuple(draws),
        view=simple_view(),
        projection=simple_projection(CFG.screen_width / CFG.screen_height),
        raster_only=raster_only,
    )
    return GPU(CFG, rbcd_enabled=False).render_frame(frame)


class TestShaderCost:
    def test_default_cycles_from_config(self):
        frame = Frame(
            draws=(DrawCommand(make_box(), Mat4.identity()),),
            view=Mat4.identity(),
            projection=Mat4.identity(),
        )
        assert fragment_shader_cycles_per_draw(frame, CFG)[0] == CFG.cycles_per_fragment

    def test_override_cycles(self):
        frame = Frame(
            draws=(DrawCommand(make_box(), Mat4.identity(), fragment_cycles=9.0),),
            view=Mat4.identity(),
            projection=Mat4.identity(),
        )
        assert fragment_shader_cycles_per_draw(frame, CFG)[0] == 9.0

    def test_expensive_material_costs_more(self):
        cheap = render([DrawCommand(make_box(), Mat4.identity(), fragment_cycles=1.0)])
        costly = render([DrawCommand(make_box(), Mat4.identity(), fragment_cycles=16.0)])
        assert costly.stats.fragment_cycles > cheap.stats.fragment_cycles
        assert cheap.stats.fragments_shaded == costly.stats.fragments_shaded

    def test_shaded_equals_early_z_passes(self):
        result = render([DrawCommand(make_box(), Mat4.identity())])
        assert result.stats.fragments_shaded == result.stats.early_z_passes

    def test_texture_accesses_track_shaded(self):
        result = render([DrawCommand(make_box(), Mat4.identity())])
        assert result.stats.texture_accesses == result.stats.fragments_shaded


class TestColorOutput:
    def test_flat_color_applied(self):
        result = render(
            [DrawCommand(make_box(), Mat4.identity(), color=(0.0, 0.0, 1.0))]
        )
        covered = result.z_buffer < 1.0
        assert covered.any()
        assert np.allclose(result.color[covered], [0.0, 0.0, 1.0])

    def test_background_is_black(self):
        result = render([DrawCommand(make_box(), Mat4.identity())])
        empty = result.z_buffer == 1.0
        assert np.allclose(result.color[empty], 0.0)

    def test_color_writes_counted(self):
        result = render([DrawCommand(make_box(), Mat4.identity())])
        covered = int((result.z_buffer < 1.0).sum())
        assert result.stats.color_writes == covered

    def test_raster_only_produces_no_color(self):
        result = render(
            [DrawCommand(make_box(), Mat4.identity(), object_id=None)],
            raster_only=True,
        )
        assert np.allclose(result.color, 0.0)
        assert result.stats.fragments_shaded == 0
