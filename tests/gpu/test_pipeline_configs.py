"""Pipeline behaviour across configuration corners."""

import math

import numpy as np
import pytest

from repro.geometry.primitives import make_box, make_plane
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.commands import CullMode, DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from tests.conftest import simple_projection, simple_view, two_boxes_frame


def render(config, draws, rbcd=True):
    frame = Frame(
        draws=tuple(draws),
        view=simple_view(),
        projection=simple_projection(config.screen_width / config.screen_height),
    )
    return GPU(config, rbcd_enabled=rbcd).render_frame(frame)


class TestScreenShapes:
    def test_screen_not_multiple_of_tile(self):
        config = GPUConfig().with_screen(150, 70)  # 10x5 tiles, ragged edge
        result = GPU(config).render_frame(two_boxes_frame(config, 0.8))
        assert result.color.shape == (70, 150, 3)
        assert (1, 2) in result.collisions
        assert (result.stats.fragments_produced > 0)

    def test_tiny_screen(self):
        # A single 16x16 tile: the overlap region must span at least a
        # pixel at this resolution, so use deeply overlapping boxes.
        config = GPUConfig().with_screen(16, 16)
        result = GPU(config).render_frame(two_boxes_frame(config, 0.3))
        assert config.tile_count == 1
        assert (1, 2) in result.collisions

    @pytest.mark.parametrize("tile_size", [8, 32])
    def test_tile_size_variants(self, tile_size):
        import dataclasses

        config = dataclasses.replace(
            GPUConfig().with_screen(128, 64), tile_size=tile_size
        )
        result = GPU(config).render_frame(two_boxes_frame(config, 0.8))
        assert (1, 2) in result.collisions

    def test_collisions_consistent_across_tile_sizes(self):
        """Tile partitioning is an implementation detail: collision
        results must not depend on it."""
        import dataclasses

        base = GPUConfig().with_screen(128, 128)
        pair_sets = []
        for tile_size in (8, 16, 32):
            config = dataclasses.replace(base, tile_size=tile_size)
            result = GPU(config).render_frame(two_boxes_frame(config, 0.75))
            pair_sets.append(result.collisions.as_sorted_pairs())
        assert pair_sets[0] == pair_sets[1] == pair_sets[2]


class TestCullModesEndToEnd:
    CFG = GPUConfig().with_screen(96, 96)

    def test_cull_none_collisionable(self):
        box = make_box(Vec3(0.5, 0.5, 0.5))
        result = render(
            self.CFG,
            [
                DrawCommand(box, Mat4.translation(Vec3(-0.3, 0, 0)),
                            object_id=1, cull_mode=CullMode.NONE),
                DrawCommand(box, Mat4.translation(Vec3(0.3, 0, 0)),
                            object_id=2, cull_mode=CullMode.NONE),
            ],
        )
        # No tagging needed: every face already reaches the rasterizer.
        assert result.stats.triangles_tagged_to_be_culled == 0
        assert (1, 2) in result.collisions

    def test_front_cull_still_detects(self):
        """Deferred culling keeps the fronts of front-culled draws, so
        the interval structure survives."""
        box = make_box(Vec3(0.5, 0.5, 0.5))
        result = render(
            self.CFG,
            [
                DrawCommand(box, Mat4.translation(Vec3(-0.3, 0, 0)),
                            object_id=1, cull_mode=CullMode.FRONT),
                DrawCommand(box, Mat4.translation(Vec3(0.3, 0, 0)),
                            object_id=2, cull_mode=CullMode.FRONT),
            ],
        )
        assert (1, 2) in result.collisions

    def test_single_sided_plane_contributes_front_only(self):
        plane = make_plane(half_size=1.0)
        result = render(
            self.CFG,
            [DrawCommand(plane, Mat4.identity(), object_id=1)],
        )
        # An open surface cannot close an interval: no pairs, and its
        # back side got tagged (deferred) rather than culled.
        assert len(result.collisions) == 0


class TestBandwidthAccounting:
    def test_dram_traffic_counted(self, small_config):
        result = GPU(small_config).render_frame(two_boxes_frame(small_config, 0.8))
        stats = result.stats
        assert stats.dram_bytes_written >= stats.color_writes * 4
        assert stats.dram_bytes_total > 0

    def test_interface_has_headroom_per_frame_budget(self):
        """Table 2's interface (4 B/cycle at 400 MHz = 1.6 GB/s) moves a
        frame's off-chip traffic in a small fraction of a 30 fps frame
        budget — memory bandwidth is not the binding constraint."""
        from repro.scenes.benchmarks import make_cap

        config = GPUConfig().with_screen(320, 192)
        workload = make_cap(detail=1)
        frame = workload.scene.frame_at(1.0, config)
        result = GPU(config).render_frame(frame)
        budget_bytes = (
            config.mem_bandwidth_bytes_per_cycle * config.frequency_hz / 30.0
        )
        assert 0.0 < result.stats.dram_bytes_total < 0.25 * budget_bytes

    def test_zero_cycles_zero_utilization(self):
        from repro.gpu.stats import GPUStats

        assert GPUStats().bandwidth_utilization(4.0) == 0.0
