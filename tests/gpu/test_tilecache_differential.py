"""Differential suite: cache-on is bit-identical to cache-off.

The tile cache's contract (:mod:`repro.gpu.tilecache`) is *exactness*:
replaying a cached :class:`~repro.rbcd.unit.RBCDTileResult` on a
signature hit must leave every deterministic output — collision pairs,
contact records, GPU stats counters, simulated cycles, modelled energy,
provenance evidence — byte-for-byte equal to recomputing the tile.
This suite renders every quick benchmark scene as a real multi-frame
animation (the only setting where cross-frame hits exist) with the
cache off and on, at one and four workers, under both the reference and
vectorized kernel backends, and diffs complete frame fingerprints.
"""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.observability.provenance import ProvenanceRecorder
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias

WIDTH, HEIGHT = 160, 96
DETAIL = 1
FRAMES = 3  # frame 0 is always cold; later frames can hit


def animation_fingerprints(
    alias: str,
    kernel_backend: str,
    tile_cache: bool,
    workers: int = 1,
) -> tuple[list[dict], list[dict], int]:
    """Render the workload's animation; per-frame fingerprints +
    evidence records + the total number of cache hits."""
    config = (
        GPUConfig()
        .with_screen(WIDTH, HEIGHT)
        .with_kernel_backend(kernel_backend)
        .with_tile_cache(tile_cache)
    )
    if workers != 1:
        config = config.with_executor(workers=workers, backend="thread")
    workload = workload_by_alias(alias, detail=DETAIL)
    recorder = ProvenanceRecorder()
    fingerprints: list[dict] = []
    evidence: list[dict] = []
    hits = 0
    with GPU(config, rbcd_enabled=True, provenance=recorder) as gpu:
        for t in workload.times(FRAMES):
            frame = workload.scene.frame_at(float(t), config)
            result = gpu.render_frame(frame)
            report = result.collisions
            fingerprints.append({
                "pairs": report.as_sorted_pairs(),
                "contacts": {
                    (p.id_a, p.id_b):
                        [(c.x, c.y, c.z_front, c.z_back) for c in pts]
                    for p, pts in report.contacts.items()
                },
                "pair_records_written": report.pair_records_written,
                "stats": result.stats.as_dict(),
                "counters": result.stats.registry().as_dict(),
                "gpu_cycles": result.gpu_cycles,
                "energy": result.energy.as_dict(),
                "cpu_fallback": result.cpu_fallback,
            })
            if result.tilecache is not None:
                hits += result.tilecache.as_dict()["gpu.tilecache.hits"]
        evidence = [e.as_record() for e in recorder.records]
        evidence_summary = [{
            "cases": recorder.case_histogram(),
            "self_filtered": recorder.self_pairs_filtered,
            "records": evidence,
        }]
    return fingerprints, evidence_summary, hits


@pytest.mark.parametrize("backend", ["reference", "vectorized"])
@pytest.mark.parametrize("alias", list(BENCHMARKS))
def test_cache_on_equals_cache_off(alias, backend):
    baseline, base_evidence, _ = animation_fingerprints(
        alias, backend, tile_cache=False
    )
    for workers in (1, 4):
        cached, evidence, hits = animation_fingerprints(
            alias, backend, tile_cache=True, workers=workers
        )
        assert cached == baseline, (
            f"{alias}/{backend}/workers={workers}: cache-on output "
            f"diverged from cache-off"
        )
        assert evidence == base_evidence, (
            f"{alias}/{backend}/workers={workers}: provenance evidence "
            f"diverged under replay"
        )
        assert hits > 0, (
            f"{alias}/{backend}/workers={workers}: the animation produced "
            f"no cross-frame hits — the differential ran vacuously"
        )


def test_repeated_identical_frame_hits_every_tile():
    """Rendering the exact same frame twice must replay every RBCD
    tile the second time — the strongest possible redundancy."""
    config = GPUConfig().with_screen(WIDTH, HEIGHT).with_tile_cache(True)
    workload = workload_by_alias("cap", detail=DETAIL)
    frame = workload.scene.frame_at(1.0, config)
    with GPU(config, rbcd_enabled=True) as gpu:
        first = gpu.render_frame(frame)
        second = gpu.render_frame(frame)
    counters = second.tilecache.as_dict()
    assert counters["gpu.tilecache.lookups"] > 0
    assert counters["gpu.tilecache.hits"] == counters["gpu.tilecache.lookups"]
    assert counters["gpu.tilecache.collisions"] == 0
    assert first.collisions.as_sorted_pairs() == second.collisions.as_sorted_pairs()
    assert first.stats.as_dict() == second.stats.as_dict()


def test_savings_price_only_replayed_tiles():
    """cycles_saved equals the summed insertion+overlap cycles of the
    hit tiles — never more than the frame actually spent on RBCD."""
    config = GPUConfig().with_screen(WIDTH, HEIGHT).with_tile_cache(True)
    workload = workload_by_alias("cap", detail=DETAIL)
    frame = workload.scene.frame_at(1.0, config)
    with GPU(config, rbcd_enabled=True) as gpu:
        gpu.render_frame(frame)
        result = gpu.render_frame(frame)
    counters = result.tilecache.as_dict()
    # Insertion costs one cycle per ZEB insertion; overlap busy cycles
    # are tracked directly — together an upper bound on what replay
    # could possibly have saved.
    rbcd_cycles = result.stats.zeb_insertions + result.stats.rbcd_cycles
    assert 0 < counters["gpu.tilecache.cycles_saved"] <= rbcd_cycles
    assert 0 < counters["gpu.tilecache.joules_saved"] < result.energy.total_j
