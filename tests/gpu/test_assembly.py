"""Primitive assembly: clipping, viewport mapping, face culling."""

import numpy as np
import pytest

from repro.geometry.mesh import TriangleMesh
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.assembly import TriangleSoup, assemble
from repro.gpu.commands import CullMode, DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.shading import shade_draws
from repro.gpu.stats import GPUStats


CFG = GPUConfig().with_screen(100, 100)
# Orthographic view volume x,y in [-1,1], z in [-1,-9] world (near=1, far=9).
ORTHO = Mat4.orthographic(-1, 1, -1, 1, 1.0, 9.0)


def assemble_triangles(vertices, faces, cull=CullMode.BACK, object_id=None,
                       deferred=True):
    mesh = TriangleMesh(vertices, faces)
    frame = Frame(
        draws=(DrawCommand(mesh, Mat4.identity(), object_id=object_id, cull_mode=cull),),
        view=Mat4.identity(),
        projection=ORTHO,
    )
    stats = GPUStats()
    shaded = shade_draws(frame, CFG, stats)
    soup = assemble(shaded, CFG, stats, deferred_culling=deferred)
    return soup, stats


# A CCW (front-facing, +z normal toward the camera) triangle at z=-5.
FRONT_TRI = ([[-0.5, -0.5, -5.0], [0.5, -0.5, -5.0], [0.0, 0.5, -5.0]], [[0, 1, 2]])
BACK_TRI = (FRONT_TRI[0], [[0, 2, 1]])


class TestViewportMapping:
    def test_inside_triangle_passes_through(self):
        soup, stats = assemble_triangles(*FRONT_TRI)
        assert soup.count == 1
        assert stats.triangles_frustum_culled == 0

    def test_screen_coordinates(self):
        soup, _ = assemble_triangles(*FRONT_TRI)
        xs = sorted(soup.xy[0, :, 0])
        ys = sorted(soup.xy[0, :, 1])
        # x=-0.5 -> 25, x=0.5 -> 75 on a 100-wide screen.
        assert xs == pytest.approx([25.0, 50.0, 75.0])
        # y is flipped: world y=+0.5 -> screen y=25.
        assert ys == pytest.approx([25.0, 75.0, 75.0])

    def test_depth_mapping(self):
        soup, _ = assemble_triangles(*FRONT_TRI)
        # Ortho: z=-5 is the middle of [1, 9] -> depth 0.5.
        assert np.allclose(soup.z, 0.5)

    def test_facing_front(self):
        soup, _ = assemble_triangles(*FRONT_TRI, cull=CullMode.NONE)
        assert soup.front[0]

    def test_facing_back(self):
        soup, _ = assemble_triangles(*BACK_TRI, cull=CullMode.NONE)
        assert not soup.front[0]


class TestFrustumCullAndClip:
    def test_fully_outside_culled(self):
        verts = [[5.0, 5.0, -5.0], [6.0, 5.0, -5.0], [5.0, 6.0, -5.0]]
        soup, stats = assemble_triangles(verts, [[0, 1, 2]])
        assert soup.count == 0
        assert stats.triangles_frustum_culled == 1

    def test_behind_camera_culled(self):
        verts = [[-0.5, -0.5, 5.0], [0.5, -0.5, 5.0], [0.0, 0.5, 5.0]]
        soup, stats = assemble_triangles(verts, [[0, 1, 2]])
        assert soup.count == 0

    def test_partially_outside_clipped(self):
        # Crosses the x = +1 plane: the clipper fans the polygon.
        verts = [[0.0, -0.5, -5.0], [2.0, -0.5, -5.0], [0.0, 0.5, -5.0]]
        soup, stats = assemble_triangles(verts, [[0, 1, 2]])
        assert soup.count >= 1
        assert stats.triangles_clipped >= 1
        assert soup.xy[:, :, 0].max() <= 100.0 + 1e-6

    def test_near_plane_clip_produces_valid_depths(self):
        # Spans from in front of the near plane to behind the camera.
        verts = [[-0.5, 0.0, -5.0], [0.5, 0.0, -5.0], [0.0, 0.0, 3.0]]
        mesh_verts = [[-0.5, -0.2, -5.0], [0.5, -0.2, -5.0], [0.0, 0.8, 3.0]]
        soup, _ = assemble_triangles(mesh_verts, [[0, 1, 2]])
        if soup.count:
            assert soup.z.min() >= -1e-9
            assert soup.z.max() <= 1.0 + 1e-9

    def test_perspective_near_clip(self):
        proj = Mat4.perspective(np.deg2rad(60), 1.0, 0.5, 50.0)
        mesh = TriangleMesh(
            [[-1.0, -0.2, -5.0], [1.0, -0.2, -5.0], [0.0, 0.5, 1.0]], [[0, 1, 2]]
        )
        frame = Frame(
            draws=(DrawCommand(mesh, Mat4.identity()),),
            view=Mat4.identity(),
            projection=proj,
        )
        stats = GPUStats()
        soup = assemble(shade_draws(frame, CFG, stats), CFG, stats)
        assert soup.count >= 1
        assert np.isfinite(soup.xy).all()
        assert soup.z.min() >= -1e-9 and soup.z.max() <= 1.0 + 1e-9


class TestFaceCulling:
    def test_back_cull_removes_back_face(self):
        soup, stats = assemble_triangles(*BACK_TRI)
        assert soup.count == 0
        assert stats.triangles_face_culled == 1

    def test_front_cull_removes_front_face(self):
        soup, _ = assemble_triangles(*FRONT_TRI, cull=CullMode.FRONT)
        assert soup.count == 0

    def test_cull_none_keeps_both(self):
        soup, _ = assemble_triangles(*BACK_TRI, cull=CullMode.NONE)
        assert soup.count == 1

    def test_front_and_back_drops_all(self):
        soup, _ = assemble_triangles(*FRONT_TRI, cull=CullMode.FRONT_AND_BACK)
        assert soup.count == 0

    def test_collisionable_back_face_tagged_not_culled(self):
        soup, stats = assemble_triangles(*BACK_TRI, object_id=7)
        assert soup.count == 1
        assert soup.tagged[0]
        assert soup.object_id[0] == 7
        assert stats.triangles_tagged_to_be_culled == 1
        assert stats.triangles_face_culled == 0

    def test_collisionable_front_face_not_tagged(self):
        soup, _ = assemble_triangles(*FRONT_TRI, object_id=7)
        assert soup.count == 1
        assert not soup.tagged[0]

    def test_deferred_culling_disabled_behaves_like_baseline(self):
        soup, stats = assemble_triangles(*BACK_TRI, object_id=7, deferred=False)
        assert soup.count == 0
        assert stats.triangles_face_culled == 1
        assert stats.triangles_tagged_to_be_culled == 0

    def test_non_collisionable_object_id_is_minus_one(self):
        soup, _ = assemble_triangles(*FRONT_TRI)
        assert soup.object_id[0] == -1


class TestDegenerate:
    def test_zero_area_dropped(self):
        verts = [[0.0, 0.0, -5.0], [0.5, 0.0, -5.0], [1.0, 0.0, -5.0]]
        soup, stats = assemble_triangles(verts, [[0, 1, 2]], cull=CullMode.NONE)
        assert soup.count == 0
        assert stats.triangles_degenerate == 1


class TestSoupContainer:
    def test_empty_concatenate(self):
        assert TriangleSoup.concatenate([]).count == 0

    def test_concatenate_preserves_counts(self):
        a, _ = assemble_triangles(*FRONT_TRI)
        b, _ = assemble_triangles(*FRONT_TRI)
        merged = TriangleSoup.concatenate([a, b])
        assert merged.count == 2
