"""Tiling engine (polygon list builder) tests."""

import numpy as np
import pytest

from repro.gpu.assembly import TriangleSoup
from repro.gpu.caches import Cache
from repro.gpu.config import GPUConfig
from repro.gpu.stats import GPUStats
from repro.gpu.tiling import bin_triangles, fetch_tile_lists

CFG = GPUConfig().with_screen(64, 48)  # 4 x 3 tiles of 16px


def soup_of(xy_list):
    n = len(xy_list)
    return TriangleSoup(
        xy=np.array(xy_list, dtype=np.float64),
        z=np.full((n, 3), 0.5),
        object_id=np.full(n, -1, dtype=np.int64),
        front=np.ones(n, dtype=bool),
        tagged=np.zeros(n, dtype=bool),
        draw_index=np.zeros(n, dtype=np.int64),
    )


class TestBinning:
    def test_single_tile_triangle(self):
        soup = soup_of([[[2.0, 2.0], [10.0, 2.0], [2.0, 10.0]]])
        stats = GPUStats()
        binning = bin_triangles(soup, CFG, stats)
        assert binning.pair_count == 1
        assert binning.prims_of_tile(0).tolist() == [0]
        assert stats.prim_tile_pairs == 1
        assert stats.tile_cache_stores == 1

    def test_spanning_triangle_binned_to_all_touched_tiles(self):
        # Bbox spans tiles (0,0) through (1,1): 4 tiles.
        soup = soup_of([[[10.0, 10.0], [20.0, 10.0], [10.0, 20.0]]])
        binning = bin_triangles(soup, CFG, GPUStats())
        assert binning.pair_count == 4
        tiles = sorted(binning.pair_tile.tolist())
        assert tiles == [0, 1, 4, 5]

    def test_bbox_binning_is_conservative(self):
        # A sliver whose bbox covers tile (1, 0) without covering any of
        # its pixels still gets binned there (hardware behaviour).
        soup = soup_of([[[2.0, 2.0], [30.0, 2.5], [2.0, 3.0]]])
        binning = bin_triangles(soup, CFG, GPUStats())
        assert 1 in binning.pair_tile.tolist()

    def test_offscreen_coordinates_clamped(self):
        soup = soup_of([[[-50.0, -50.0], [10.0, -50.0], [-50.0, 10.0]]])
        binning = bin_triangles(soup, CFG, GPUStats())
        assert (binning.pair_tile >= 0).all()

    def test_submission_order_within_tile(self):
        tri = [[2.0, 2.0], [10.0, 2.0], [2.0, 10.0]]
        soup = soup_of([tri, tri, tri])
        binning = bin_triangles(soup, CFG, GPUStats())
        assert binning.prims_of_tile(0).tolist() == [0, 1, 2]

    def test_csr_offsets_consistent(self):
        rng = np.random.RandomState(0)
        tris = []
        for _ in range(40):
            x, y = rng.uniform(0, 60), rng.uniform(0, 44)
            tris.append([[x, y], [x + 5, y], [x, y + 5]])
        soup = soup_of(tris)
        binning = bin_triangles(soup, CFG, GPUStats())
        assert binning.tile_offsets[0] == 0
        assert binning.tile_offsets[-1] == binning.pair_count
        assert (np.diff(binning.tile_offsets) >= 0).all()
        # Every pair appears in exactly one tile slice.
        total = sum(
            binning.prims_of_tile(t).size for t in range(CFG.tile_count)
        )
        assert total == binning.pair_count

    def test_empty_soup(self):
        binning = bin_triangles(TriangleSoup.empty(), CFG, GPUStats())
        assert binning.pair_count == 0
        assert binning.tile_offsets.shape == (CFG.tile_count + 1,)


class TestTileFetch:
    def test_loads_counted_per_pair(self):
        tri = [[2.0, 2.0], [30.0, 2.0], [2.0, 30.0]]  # spans 4 tiles
        soup = soup_of([tri])
        stats = GPUStats()
        cache = Cache(CFG.tile_cache)
        binning = bin_triangles(soup, CFG, stats, cache)
        fetch_tile_lists(binning, CFG, stats, cache)
        assert stats.tile_cache_loads == 4
        assert stats.prims_rasterized == 4

    def test_fetch_after_store_mostly_hits(self):
        tri = [[2.0, 2.0], [10.0, 2.0], [2.0, 10.0]]
        soup = soup_of([tri] * 8)
        stats = GPUStats()
        cache = Cache(CFG.tile_cache)
        binning = bin_triangles(soup, CFG, stats, cache)
        misses = fetch_tile_lists(binning, CFG, stats, cache)
        # Records were just written; the working set fits the cache.
        assert stats.tile_cache_load_misses == 0
        assert misses.sum() == 0

    def test_per_tile_miss_array_shape(self):
        soup = soup_of([[[2.0, 2.0], [10.0, 2.0], [2.0, 10.0]]])
        stats = GPUStats()
        cache = Cache(CFG.tile_cache)
        binning = bin_triangles(soup, CFG, stats, cache)
        misses = fetch_tile_lists(binning, CFG, stats, cache)
        assert misses.shape == (CFG.tile_count,)
