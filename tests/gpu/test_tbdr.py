"""TBDR (deferred shading) rendering-mode tests."""

import numpy as np
import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from tests.conftest import two_boxes_frame

CFG = GPUConfig().with_screen(128, 96)


class TestTBDRMode:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            GPU(CFG, rendering_mode="imr")

    def test_same_image_and_collisions(self):
        frame = two_boxes_frame(CFG, 0.7)
        tbr = GPU(CFG, rendering_mode="tbr").render_frame(frame)
        tbdr = GPU(CFG, rendering_mode="tbdr").render_frame(frame)
        assert np.array_equal(tbr.color, tbdr.color)
        assert np.array_equal(tbr.z_buffer, tbdr.z_buffer)
        assert tbr.collisions.as_sorted_pairs() == tbdr.collisions.as_sorted_pairs()

    def test_tbdr_shades_exactly_covered_pixels(self):
        frame = two_boxes_frame(CFG, 0.7)
        result = GPU(CFG, rendering_mode="tbdr").render_frame(frame)
        covered = int((result.z_buffer < 1.0).sum())
        assert result.stats.fragments_shaded == covered

    def test_tbdr_never_shades_more_than_tbr(self):
        frame = two_boxes_frame(CFG, 0.7)
        tbr = GPU(CFG, rendering_mode="tbr").render_frame(frame)
        tbdr = GPU(CFG, rendering_mode="tbdr").render_frame(frame)
        assert tbdr.stats.fragments_shaded <= tbr.stats.fragments_shaded
        assert tbdr.stats.fragment_cycles <= tbr.stats.fragment_cycles

    def test_tbdr_saves_on_overdraw_heavy_scene(self):
        """Two boxes stacked in depth: TBR shades the far box's pixels
        before the near box occludes them; TBDR never does."""
        from repro.geometry.primitives import make_box
        from repro.geometry.vec import Mat4, Vec3
        from repro.gpu.commands import DrawCommand, Frame
        from tests.conftest import simple_projection, simple_view

        # Far first (so TBR shades it, then re-shades with the near box).
        draws = (
            DrawCommand(make_box(Vec3(0.8, 0.8, 0.8)),
                        Mat4.translation(Vec3(0, 0, -1.5))),
            DrawCommand(make_box(Vec3(0.8, 0.8, 0.8)),
                        Mat4.translation(Vec3(0, 0, 1.0))),
        )
        frame = Frame(
            draws=draws, view=simple_view(),
            projection=simple_projection(CFG.screen_width / CFG.screen_height),
        )
        tbr = GPU(CFG, rendering_mode="tbr").render_frame(frame)
        tbdr = GPU(CFG, rendering_mode="tbdr").render_frame(frame)
        assert tbdr.stats.fragments_shaded < tbr.stats.fragments_shaded

    def test_tbdr_gpu_time_not_longer(self):
        frame = two_boxes_frame(CFG, 0.7)
        tbr = GPU(CFG, rendering_mode="tbr").render_frame(frame)
        tbdr = GPU(CFG, rendering_mode="tbdr").render_frame(frame)
        assert tbdr.stats.gpu_cycles <= tbr.stats.gpu_cycles
