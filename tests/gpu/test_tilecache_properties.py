"""Property suite for the tile-signature scheme.

The cache's exactness argument rests on four properties of
:mod:`repro.gpu.tilecache`, each driven here with hypothesis:

* **Determinism** — the same tile inputs always serialise to the same
  canonical key and the same signature.
* **Sensitivity** — perturbing *any* input the RBCD unit can observe
  (a vertex coordinate by one ULP, an object id, a facing or tagged
  bit, a config field) changes the tile's key.
* **No aliasing** — the key encoding is injective: two tiles' keys are
  equal exactly when their ordered collisionable primitive content is
  equal.  The per-segment length prefix makes concatenation attacks
  structurally impossible, not just unlikely.
* **Wrong hits are impossible** — even with the digest degraded to a
  constant (every lookup a hash collision), the full-key paranoia
  compare keeps every output bit-identical; collisions are merely
  counted.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

import repro.gpu.tilecache as tilecache
from repro.gpu.assembly import TriangleSoup
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.gpu.tilecache import (
    SIGNATURE_BYTES,
    TileResultCache,
    config_token,
    frame_tile_keys,
    tile_signature,
)
from repro.gpu.tiling import TileBinning
from repro.rbcd.unit import compute_tile
from repro.scenes.benchmarks import workload_by_alias

CFG = GPUConfig().with_screen(64, 64)  # 4x4 tiles of 16x16

coord = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, width=64
)
depth = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64)


@st.composite
def soup_with_tiles(draw, min_prims=1, max_prims=8):
    """A random triangle soup plus a tile assignment per primitive."""
    n = draw(st.integers(min_prims, max_prims))
    soup = TriangleSoup(
        xy=draw(hnp.arrays(np.float64, (n, 3, 2), elements=coord)),
        z=draw(hnp.arrays(np.float64, (n, 3), elements=depth)),
        object_id=draw(
            hnp.arrays(np.int64, (n,), elements=st.integers(-1, 5))
        ),
        front=draw(hnp.arrays(np.bool_, (n,))),
        tagged=draw(hnp.arrays(np.bool_, (n,))),
        draw_index=np.zeros(n, dtype=np.int64),
    )
    tiles = draw(
        hnp.arrays(np.int64, (n,), elements=st.integers(0, CFG.tile_count - 1))
    )
    return soup, tiles


def binning_for(tiles: np.ndarray) -> TileBinning:
    """A TileBinning assigning each primitive to exactly one tile,
    sorted the way :func:`repro.gpu.tiling.bin_triangles` sorts —
    by (tile, submission order)."""
    order = np.argsort(tiles, kind="stable")
    return TileBinning(
        pair_tile=tiles[order].astype(np.int64),
        pair_prim=np.arange(tiles.shape[0], dtype=np.int64)[order],
        tile_offsets=np.zeros(1, dtype=np.int64),  # unused by the cache
        record_addresses=np.zeros(tiles.shape[0], dtype=np.int64),
    )


def tile_contents(soup, tiles):
    """Ordered collisionable content per tile — the ground truth the
    keys must represent injectively."""
    contents = {}
    for tile in np.unique(tiles):
        idx = np.flatnonzero((tiles == tile) & (soup.object_id >= 0))
        if idx.shape[0]:
            contents[int(tile)] = (
                soup.xy[idx].tobytes(), soup.z[idx].tobytes(),
                soup.object_id[idx].tobytes(), soup.front[idx].tobytes(),
                soup.tagged[idx].tobytes(),
            )
    return contents


class TestDeterminism:
    @settings(max_examples=60, deadline=None)
    @given(soup_with_tiles())
    def test_same_inputs_same_keys_and_digests(self, data):
        soup, tiles = data
        first = frame_tile_keys(soup, binning_for(tiles), CFG)
        second = frame_tile_keys(soup, binning_for(tiles.copy()), CFG)
        assert first == second
        for key in first.values():
            digest = tile_signature(key)
            assert digest == tile_signature(key)
            assert len(digest) == SIGNATURE_BYTES

    def test_keys_cover_exactly_collisionable_tiles(self):
        soup, tiles = (
            TriangleSoup(
                xy=np.zeros((3, 3, 2)), z=np.zeros((3, 3)),
                object_id=np.array([0, -1, 1], dtype=np.int64),
                front=np.ones(3, dtype=bool), tagged=np.zeros(3, dtype=bool),
                draw_index=np.zeros(3, dtype=np.int64),
            ),
            np.array([0, 1, 2], dtype=np.int64),
        )
        keys = frame_tile_keys(soup, binning_for(tiles), CFG)
        # Tile 1 holds only the non-collisionable prim: no RBCD work,
        # no key.
        assert set(keys) == {0, 2}


class TestSensitivity:
    @settings(max_examples=80, deadline=None)
    @given(
        soup_with_tiles(),
        st.integers(0, 10**6),   # primitive picker
        st.integers(0, 2),       # vertex
        st.integers(0, 2),       # coordinate: x, y, or z
    )
    def test_one_ulp_vertex_perturbation_changes_the_key(
        self, data, prim_pick, vertex, axis
    ):
        soup, tiles = data
        prim = prim_pick % soup.count
        soup.object_id[prim] = max(soup.object_id[prim], 0)  # collisionable
        before = frame_tile_keys(soup, binning_for(tiles), CFG)
        if axis < 2:
            value = soup.xy[prim, vertex, axis]
            soup.xy[prim, vertex, axis] = np.nextafter(value, np.inf)
        else:
            value = soup.z[prim, vertex]
            soup.z[prim, vertex] = np.nextafter(value, np.inf)
        after = frame_tile_keys(soup, binning_for(tiles), CFG)
        tile = int(tiles[prim])
        assert before[tile] != after[tile]
        assert tile_signature(before[tile]) != tile_signature(after[tile])

    @settings(max_examples=60, deadline=None)
    @given(soup_with_tiles(), st.integers(0, 10**6),
           st.sampled_from(["object_id", "front", "tagged"]))
    def test_flipping_any_field_bit_changes_the_key(
        self, data, prim_pick, fieldname
    ):
        soup, tiles = data
        prim = prim_pick % soup.count
        soup.object_id[prim] = max(soup.object_id[prim], 0)
        before = frame_tile_keys(soup, binning_for(tiles), CFG)
        if fieldname == "object_id":
            soup.object_id[prim] += 1
        else:
            field = getattr(soup, fieldname)
            field[prim] = ~field[prim]
        after = frame_tile_keys(soup, binning_for(tiles), CFG)
        tile = int(tiles[prim])
        assert before[tile] != after[tile]

    @pytest.mark.parametrize("mutate", [
        lambda c: c.with_screen(65, 64),
        lambda c: c.with_screen(64, 65),
        lambda c: c.with_rbcd(zeb_count=1),
        lambda c: c.with_rbcd(list_length=4, ff_stack_entries=4),
        lambda c: c.with_rbcd(ff_stack_entries=16),
        lambda c: c.with_rbcd(spare_entries_per_tile=8),
        lambda c: c.with_rbcd(cpu_fallback_overflow_rate=0.5),
        lambda c: c.with_rbcd(z_bits=17, id_bits=14),
    ])
    def test_config_fields_feed_the_token(self, mutate):
        assert config_token(CFG) != config_token(mutate(CFG))

    @pytest.mark.parametrize("mutate", [
        # Bit-identical knobs must NOT invalidate signatures: backend
        # and executor choices never change a tile's result.
        lambda c: c.with_kernel_backend("reference"),
        lambda c: c.with_executor(workers=4, backend="thread"),
        lambda c: c.with_tile_cache(True),
    ])
    def test_result_invariant_fields_stay_out_of_the_token(self, mutate):
        assert config_token(CFG) == config_token(mutate(CFG))


class TestNoAliasing:
    @settings(max_examples=60, deadline=None)
    @given(soup_with_tiles(), soup_with_tiles())
    def test_key_equality_iff_content_equality(self, a, b):
        """Injectivity over randomized streams: keys collide exactly
        when the ordered collisionable tile content is identical."""
        soup_a, tiles_a = a
        soup_b, tiles_b = b
        keys_a = frame_tile_keys(soup_a, binning_for(tiles_a), CFG)
        keys_b = frame_tile_keys(soup_b, binning_for(tiles_b), CFG)
        content_a = tile_contents(soup_a, tiles_a)
        content_b = tile_contents(soup_b, tiles_b)
        assert set(keys_a) == set(content_a)
        assert set(keys_b) == set(content_b)
        for tile in set(keys_a) & set(keys_b):
            assert (keys_a[tile] == keys_b[tile]) == (
                content_a[tile] == content_b[tile]
            )

    def test_count_prefix_blocks_boundary_shifts(self):
        """A 2-prim tile can never alias a 1-prim tile even when the
        extra prim serialises to bytes that extend the shorter key —
        the count is written before any payload."""
        soup = TriangleSoup(
            xy=np.zeros((2, 3, 2)), z=np.zeros((2, 3)),
            object_id=np.zeros(2, dtype=np.int64),
            front=np.ones(2, dtype=bool), tagged=np.zeros(2, dtype=bool),
            draw_index=np.zeros(2, dtype=np.int64),
        )
        one = frame_tile_keys(
            soup, binning_for(np.array([0, 1], dtype=np.int64)), CFG
        )
        both = frame_tile_keys(
            soup, binning_for(np.array([0, 0], dtype=np.int64)), CFG
        )
        assert one[0] != both[0]
        assert not both[0].startswith(one[0])  # count differs up front

    def test_same_content_different_tile_differs(self):
        """The tile index is part of the key: identical content binned
        to another tile must not replay this tile's result (their
        local pixel coordinates differ)."""
        soup = TriangleSoup(
            xy=np.zeros((1, 3, 2)), z=np.zeros((1, 3)),
            object_id=np.zeros(1, dtype=np.int64),
            front=np.ones(1, dtype=bool), tagged=np.zeros(1, dtype=bool),
            draw_index=np.zeros(1, dtype=np.int64),
        )
        at_zero = frame_tile_keys(
            soup, binning_for(np.array([0], dtype=np.int64)), CFG
        )[0]
        at_one = frame_tile_keys(
            soup, binning_for(np.array([1], dtype=np.int64)), CFG
        )[1]
        assert at_zero != at_one


def tiny_result(tile_index=0):
    return compute_tile(
        CFG, tile_index,
        x=np.array([0, 1], dtype=np.int64),
        y=np.array([0, 0], dtype=np.int64),
        z=np.array([0.25, 0.5]),
        object_id=np.array([0, 1], dtype=np.int64),
        is_front=np.array([True, True]),
    )


class TestForcedCollisions:
    def test_degenerate_digest_never_returns_a_wrong_result(self, monkeypatch):
        """With the digest degraded to a constant, every changed tile
        is a hash collision — the full-key compare must catch each one
        and fall back to recomputation."""
        monkeypatch.setattr(
            tilecache, "tile_signature",
            lambda key: b"\x00" * SIGNATURE_BYTES,
        )
        cache = TileResultCache(CFG)
        result = tiny_result()
        cache.store(0, b"key-one", result)
        assert cache.lookup(0, b"key-two") is None  # collision, not a hit
        assert cache.frame_collisions == 1
        assert cache.lookup(0, b"key-one") is result  # true hit still works
        assert cache.frame_hits == 1

    def test_animation_stays_exact_under_forced_collisions(self, monkeypatch):
        """End-to-end: a whole animated scene rendered with the
        constant digest produces bit-identical frames and a nonzero
        collision count — a wrong hit would be caught, and is."""
        workload = workload_by_alias("crazy", detail=1)
        config = GPUConfig().with_screen(160, 96)

        def render_all(cfg):
            frames = []
            with GPU(cfg, rbcd_enabled=True) as gpu:
                for t in workload.times(3):
                    result = gpu.render_frame(
                        workload.scene.frame_at(float(t), cfg)
                    )
                    frames.append({
                        "pairs": result.collisions.as_sorted_pairs(),
                        "stats": result.stats.as_dict(),
                        "cycles": result.gpu_cycles,
                    })
                    yielded = result.tilecache
                frames.append(
                    yielded.as_dict() if yielded is not None else None
                )
            return frames

        baseline = render_all(config.with_tile_cache(False))
        monkeypatch.setattr(
            tilecache, "tile_signature",
            lambda key: b"\xab" * SIGNATURE_BYTES,
        )
        collided = render_all(config.with_tile_cache(True))
        assert collided[:-1] == baseline[:-1]
        last_counters = collided[-1]
        assert last_counters["gpu.tilecache.collisions"] > 0
