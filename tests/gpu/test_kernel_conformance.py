"""Kernel-backend conformance: every backend is bit-identical.

The kernel API contract (:mod:`repro.gpu.kernels`) is that all
registered backends compute the *same function* — not approximately,
byte for byte.  This suite is the enforcement: each test runs the
reference backend (the hardware-literal executable spec) next to every
other registered backend — plus the numba backend's pure-python cores,
which are importable without numba — over golden fixtures and
hypothesis-generated fragment streams, and asserts full observable
equality:

* rasterizer fragments (coordinates, depth *bit patterns*, triangle
  provenance, emission order);
* early-Z pass masks;
* ZEB contents and counters after insertion;
* Z-Overlap results — pairs, evidence arrays, and every counter;
* whole-frame fingerprints through the real pipeline, selected both by
  ``GPUConfig.kernel_backend`` and the environment variable.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import kernels
from repro.gpu.config import GPUConfig, RBCDConfig
from repro.gpu.kernels import KernelUnavailableError
from repro.gpu.kernels import numba_backend
from repro.gpu.pipeline import GPU
from repro.rbcd.element import quantize_depth
from tests.conftest import sphere_pair_frame, two_boxes_frame
from tests.gpu.test_parallel import frame_fingerprint
from tests.rbcd.test_differential import assert_zeb_equal

TILE_PIXELS = 256

REFERENCE = kernels.get_backend("reference")


def conformance_backends():
    """Every backend under test, reference included (it must match
    itself), plus the numba cores run as pure python when numba itself
    is not installed."""
    backends = [kernels.get_backend(n) for n in kernels.available_backends()]
    if "numba" not in {b.name for b in backends}:
        backends.append(numba_backend.make_backend(force_python=True))
    return backends


BACKENDS = conformance_backends()
BACKEND_IDS = [b.name for b in BACKENDS]


def assert_fragments_equal(a, b):
    """Bit-identical rasterizer output, depth compared as raw bits."""
    for i in range(4):
        assert a[i].dtype == b[i].dtype
    np.testing.assert_array_equal(a[0], b[0])  # px
    np.testing.assert_array_equal(a[1], b[1])  # py
    np.testing.assert_array_equal(
        a[2].view(np.int64), b[2].view(np.int64)
    )  # pz, exact bit pattern
    np.testing.assert_array_equal(a[3], b[3])  # tri


def assert_overlap_equal(a, b):
    for name in (
        "pair_row", "pair_id_a", "pair_id_b", "pair_z_front",
        "pair_z_back", "pair_case", "pair_stack_depth",
    ):
        np.testing.assert_array_equal(
            getattr(a, name), getattr(b, name), err_msg=name
        )
    for name in (
        "elements_read", "pair_records", "stack_overflows",
        "unmatched_backfaces", "disjoint_closures", "self_pairs_filtered",
    ):
        assert getattr(a, name) == getattr(b, name), name


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = kernels.backend_names()
        assert "reference" in names
        assert "vectorized" in names
        assert "numba" in names  # registered, possibly unavailable

    def test_available_backends_always_include_core_pair(self):
        available = kernels.available_backends()
        assert {"reference", "vectorized"} <= set(available)
        for name in available:
            assert kernels.get_backend(name).name == name

    def test_unknown_backend_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.get_backend("no-such-backend")

    def test_numba_backend_gated_not_broken(self):
        """Without numba the probe raises the dedicated error; with it,
        the backend resolves.  Either way import never fails."""
        if numba_backend.available():
            assert kernels.get_backend("numba").name == "numba"
        else:
            with pytest.raises(KernelUnavailableError, match="numba"):
                kernels.get_backend("numba")

    def test_config_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "reference")
        assert GPUConfig().kernel_backend == "reference"
        monkeypatch.delenv(kernels.KERNEL_BACKEND_ENV)
        assert GPUConfig().kernel_backend == kernels.DEFAULT_KERNEL_BACKEND

    def test_pipeline_rejects_unknown_backend_at_construction(self):
        config = GPUConfig().with_screen(64, 32).with_kernel_backend("bogus")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            GPU(config)


# ---------------------------------------------------------------------------
# Golden fixtures
# ---------------------------------------------------------------------------


def random_triangles(seed: int, n: int):
    """Triangle batch with degenerates, shared edges and off-screen
    geometry mixed in."""
    rng = np.random.default_rng(seed)
    xy = rng.uniform(-8.0, 72.0, size=(n, 3, 2))
    z = rng.uniform(-0.2, 1.2, size=(n, 3))
    if n >= 4:
        xy[1] = xy[0][[0, 2, 1]]          # shared edge, opposite winding
        xy[2, 1] = xy[2, 0]               # degenerate (zero area)
        z[3] = 0.5                        # constant-depth triangle
    return xy, z


def random_tile_stream(seed: int, n: int = 500, pixels: int = 16):
    """Fragment stream for one tile, hot pixels and heavy z ties."""
    rng = np.random.default_rng(seed)
    pixel = rng.integers(0, pixels, size=n).astype(np.int64)
    codes = rng.integers(0, 40, size=n).astype(np.int64)
    oid = rng.integers(0, 7, size=n).astype(np.int64)
    front = rng.random(n) < 0.5
    return pixel, codes, oid, front


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
class TestKernelConformance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rasterize_matches_reference(self, backend, seed):
        xy, z = random_triangles(seed, 24)
        assert_fragments_equal(
            backend.rasterize_triangles(xy, z, 64, 64),
            REFERENCE.rasterize_triangles(xy, z, 64, 64),
        )

    def test_rasterize_empty_and_offscreen(self, backend):
        xy = np.empty((0, 3, 2)); z = np.empty((0, 3))
        assert_fragments_equal(
            backend.rasterize_triangles(xy, z, 32, 32),
            REFERENCE.rasterize_triangles(xy, z, 32, 32),
        )
        xy, z = random_triangles(9, 8)
        xy = xy + 500.0  # fully off-screen
        assert_fragments_equal(
            backend.rasterize_triangles(xy, z, 32, 32),
            REFERENCE.rasterize_triangles(xy, z, 32, 32),
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_earlyz_matches_reference(self, backend, seed):
        rng = np.random.default_rng(seed)
        n = 800
        pixel = rng.integers(0, 40, size=n).astype(np.int64)
        z = rng.choice([0.25, 0.5, 0.5, 0.75, 1.0], size=n)  # heavy ties
        np.testing.assert_array_equal(
            backend.earlyz_pass_mask(pixel, z),
            REFERENCE.earlyz_pass_mask(pixel, z),
        )

    @pytest.mark.parametrize("m", [2, 4])
    @pytest.mark.parametrize("spare", [0, 8])
    def test_zeb_insert_matches_reference(self, backend, m, spare):
        config = RBCDConfig(list_length=m, spare_entries_per_tile=spare)
        pixel, codes, oid, front = random_tile_stream(m * 10 + spare)
        assert_zeb_equal(
            backend.zeb_insert(pixel, codes, oid, front, config, TILE_PIXELS),
            REFERENCE.zeb_insert(pixel, codes, oid, front, config, TILE_PIXELS),
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_zoverlap_matches_reference(self, backend, seed):
        config = RBCDConfig(list_length=8)
        pixel, codes, oid, front = random_tile_stream(seed, n=700)
        zeb = REFERENCE.zeb_insert(
            pixel, codes, oid, front, config, TILE_PIXELS
        )
        assert_overlap_equal(
            backend.zoverlap_traverse(zeb, config),
            REFERENCE.zoverlap_traverse(zeb, config),
        )

    def test_zoverlap_overflow_and_unmatched_counters_match(self, backend):
        # Shallow FF-Stack plus alternating facing: stack overflows and
        # unmatched back faces both fire, and must match exactly.
        config = RBCDConfig(list_length=16, ff_stack_entries=2)
        rng = np.random.default_rng(3)
        n = 400
        pixel = rng.integers(0, 4, size=n).astype(np.int64)
        codes = rng.integers(0, 25, size=n).astype(np.int64)
        oid = rng.integers(0, 8, size=n).astype(np.int64)
        front = rng.random(n) < 0.7
        zeb = REFERENCE.zeb_insert(pixel, codes, oid, front, config, TILE_PIXELS)
        ours = backend.zoverlap_traverse(zeb, config)
        theirs = REFERENCE.zoverlap_traverse(zeb, config)
        assert_overlap_equal(ours, theirs)
        assert theirs.stack_overflows > 0
        assert theirs.unmatched_backfaces > 0


# ---------------------------------------------------------------------------
# Hypothesis streams
# ---------------------------------------------------------------------------

fragment_stream = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),    # pixel
        st.integers(min_value=0, max_value=15),   # z code
        st.integers(min_value=0, max_value=4),    # object id
        st.booleans(),                            # front face
    ),
    max_size=100,
)


def _arrays(stream):
    if not stream:
        e = np.empty(0, dtype=np.int64)
        return e, e.copy(), e.copy(), np.empty(0, dtype=bool)
    pixel, codes, oid, front = (np.array(c) for c in zip(*stream))
    return (
        pixel.astype(np.int64), codes.astype(np.int64),
        oid.astype(np.int64), front.astype(bool),
    )


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
@settings(max_examples=40, deadline=None)
@given(stream=fragment_stream, m=st.sampled_from([2, 4]), spare=st.sampled_from([0, 3]))
def test_zeb_and_overlap_conform_on_generated_streams(backend, stream, m, spare):
    config = RBCDConfig(list_length=m, spare_entries_per_tile=spare)
    pixel, codes, oid, front = _arrays(stream)
    ours = backend.zeb_insert(pixel, codes, oid, front, config, 64)
    theirs = REFERENCE.zeb_insert(pixel, codes, oid, front, config, 64)
    assert_zeb_equal(ours, theirs)
    assert_overlap_equal(
        backend.zoverlap_traverse(ours, config),
        REFERENCE.zoverlap_traverse(theirs, config),
    )


@pytest.mark.parametrize("backend", BACKENDS, ids=BACKEND_IDS)
@settings(max_examples=40, deadline=None)
@given(
    pixels=st.lists(st.integers(min_value=0, max_value=7), max_size=80),
    data=st.data(),
)
def test_earlyz_conforms_on_generated_streams(backend, pixels, data):
    n = len(pixels)
    depths = data.draw(
        st.lists(
            st.sampled_from([0.0, 0.25, 0.5, 0.5, 1.0]),
            min_size=n, max_size=n,
        )
    )
    pixel = np.array(pixels, dtype=np.int64)
    z = np.array(depths, dtype=np.float64)
    np.testing.assert_array_equal(
        backend.earlyz_pass_mask(pixel, z),
        REFERENCE.earlyz_pass_mask(pixel, z),
    )


# ---------------------------------------------------------------------------
# Whole-frame conformance through the pipeline
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "name",
    [b.name for b in BACKENDS if b.name in kernels.available_backends()],
)
def test_frame_fingerprints_identical_across_backends(name, tiny_config):
    reference_config = tiny_config.with_kernel_backend("reference")
    backend_config = tiny_config.with_kernel_backend(name)
    for separation in (0.6, 1.4):
        frame = sphere_pair_frame(tiny_config, separation)
        with GPU(reference_config) as gpu:
            want = frame_fingerprint(gpu.render_frame(frame))
        with GPU(backend_config) as gpu:
            got = frame_fingerprint(gpu.render_frame(frame))
        assert got == want


def test_env_var_selection_reaches_pipeline(monkeypatch, tiny_config):
    monkeypatch.setenv(kernels.KERNEL_BACKEND_ENV, "reference")
    config = GPUConfig().with_screen(64, 32)
    assert config.kernel_backend == "reference"
    frame = two_boxes_frame(config, 0.8)
    with GPU(config) as gpu:
        want = frame_fingerprint(gpu.render_frame(frame))
    with GPU(tiny_config.with_kernel_backend("vectorized")) as gpu:
        assert frame_fingerprint(gpu.render_frame(frame)) == want
