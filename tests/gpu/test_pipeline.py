"""End-to-end GPU pipeline and tile-schedule tests."""

import numpy as np
import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU, _tile_schedule
from tests.conftest import two_boxes_frame, sphere_pair_frame


class TestTileSchedule:
    def test_empty(self):
        timing = _tile_schedule(np.zeros(0), np.zeros(0), np.zeros(0), 2)
        assert timing.total_cycles == 0.0

    def test_serial_sum_when_single_stage(self):
        raster = np.array([10.0, 20.0, 30.0])
        timing = _tile_schedule(raster, np.zeros(3), np.zeros(3), 2)
        assert timing.total_cycles == pytest.approx(60.0)
        assert timing.stall_cycles == 0.0

    def test_fragment_bound_hides_raster(self):
        raster = np.array([10.0, 10.0, 10.0])
        fragment = np.array([100.0, 100.0, 100.0])
        timing = _tile_schedule(raster, fragment, np.zeros(3), 2)
        # Fragments stream as they are rasterized, so the raster time is
        # fully hidden under the fragment-bound tiles.
        assert timing.total_cycles == pytest.approx(300.0)

    def test_one_zeb_serializes_overlap(self):
        raster = np.array([10.0] * 4)
        overlap = np.array([50.0] * 4)
        t1 = _tile_schedule(raster, np.zeros(4), overlap, 1)
        t2 = _tile_schedule(raster, np.zeros(4), overlap, 2)
        # With one ZEB every tile's raster waits out the previous
        # overlap; with two ZEBs overlap pipelines with the next raster.
        assert t1.total_cycles > t2.total_cycles
        assert t1.stall_cycles > t2.stall_cycles

    def test_two_zebs_hide_small_overlap(self):
        raster = np.array([50.0] * 6)
        overlap = np.array([20.0] * 6)
        t2 = _tile_schedule(raster, np.zeros(6), overlap, 2)
        # Overlap of tile t finishes before tile t+2 needs the ZEB.
        assert t2.stall_cycles == 0.0
        assert t2.total_cycles == pytest.approx(6 * 50.0 + 20.0)

    def test_monotone_in_zeb_count(self):
        rng = np.random.RandomState(0)
        raster = rng.uniform(5, 50, 30)
        fragment = rng.uniform(5, 50, 30)
        overlap = rng.uniform(5, 50, 30)
        totals = [
            _tile_schedule(raster, fragment, overlap, k).total_cycles
            for k in (1, 2, 3, 4)
        ]
        assert totals[0] >= totals[1] >= totals[2] >= totals[3]

    def test_queue_limits_raster_runahead(self):
        # Fragment-heavy tile 0 blocks the rasterizer from racing ahead.
        raster = np.array([10.0, 10.0])
        fragment = np.array([500.0, 0.0])
        timing = _tile_schedule(raster, fragment, np.zeros(2), 2)
        assert timing.raster_start[1] >= timing.fragment_end[0] - 16.0 - 1e-9


class TestRenderFrame:
    def test_collision_detected_when_overlapping(self, small_config):
        gpu = GPU(small_config, rbcd_enabled=True)
        result = gpu.render_frame(two_boxes_frame(small_config, 0.8))
        assert {(1, 2)} == {(p.id_a, p.id_b) for p in result.collisions.pairs}

    def test_no_collision_when_separated(self, small_config):
        gpu = GPU(small_config, rbcd_enabled=True)
        result = gpu.render_frame(two_boxes_frame(small_config, 1.5))
        assert len(result.collisions) == 0

    def test_resolution_shrinks_false_negative_margin(self):
        # A 0.02-unit overlap is thinner than a 160px screen's pixel, so
        # RBCD can miss it; at 4x the resolution the overlap column
        # contains pixel centres and the collision is found
        # (Section 2.2: higher resolution, smaller discretization area).
        lo = GPUConfig().with_screen(160, 96)
        hi = GPUConfig().with_screen(640, 384)
        hit_hi = GPU(hi, rbcd_enabled=True).render_frame(two_boxes_frame(hi, 0.98))
        assert (1, 2) in hit_hi.collisions

    def test_baseline_reports_no_collisions(self, small_config):
        gpu = GPU(small_config, rbcd_enabled=False)
        result = gpu.render_frame(two_boxes_frame(small_config, 0.8))
        assert result.collisions is None

    def test_rbcd_adds_time_and_energy_activity(self, small_config):
        frame = two_boxes_frame(small_config, 0.8)
        base = GPU(small_config, rbcd_enabled=False).render_frame(frame)
        rbcd = GPU(small_config, rbcd_enabled=True).render_frame(frame)
        assert rbcd.stats.gpu_cycles >= base.stats.gpu_cycles
        assert rbcd.stats.prims_rasterized > base.stats.prims_rasterized
        assert rbcd.stats.fragments_produced > base.stats.fragments_produced
        assert rbcd.stats.zeb_insertions > 0

    def test_spheres_collide_and_separate(self, small_config):
        gpu = GPU(small_config, rbcd_enabled=True)
        hit = gpu.render_frame(sphere_pair_frame(small_config, 0.9))
        miss = gpu.render_frame(sphere_pair_frame(small_config, 1.2))
        assert (1, 2) in hit.collisions
        assert (1, 2) not in miss.collisions

    def test_zbuffer_and_color_written(self, small_config):
        gpu = GPU(small_config, rbcd_enabled=True)
        result = gpu.render_frame(two_boxes_frame(small_config, 0.8))
        assert (result.z_buffer < 1.0).any()
        covered = result.color.sum(axis=2) > 0
        assert covered.any()
        # Colors only where depth was written.
        assert not (covered & (result.z_buffer == 1.0)).any()

    def test_raster_only_frame_skips_shading(self, small_config):
        import dataclasses

        frame = two_boxes_frame(small_config, 0.8)
        frame = dataclasses.replace(frame, raster_only=True)
        result = GPU(small_config, rbcd_enabled=True).render_frame(frame)
        assert result.stats.fragments_shaded == 0
        assert result.stats.early_z_tests == 0
        assert (1, 2) in result.collisions  # CD still works

    def test_tile_timing_kept_on_request(self, tiny_config):
        gpu = GPU(tiny_config, rbcd_enabled=True)
        frame = two_boxes_frame(tiny_config, 0.8)
        with_timing = gpu.render_frame(frame, keep_tile_timing=True)
        without = gpu.render_frame(frame)
        assert with_timing.tile_timing is not None
        assert without.tile_timing is None

    def test_fragments_kept_on_request(self, tiny_config):
        gpu = GPU(tiny_config, rbcd_enabled=True)
        frame = two_boxes_frame(tiny_config, 0.8)
        result = gpu.render_frame(frame, keep_fragments=True)
        assert result.fragments is not None
        assert result.fragments.count == result.stats.fragments_produced

    def test_deterministic(self, tiny_config):
        frame = two_boxes_frame(tiny_config, 0.8)
        a = GPU(tiny_config, rbcd_enabled=True).render_frame(frame)
        b = GPU(tiny_config, rbcd_enabled=True).render_frame(frame)
        assert a.stats.gpu_cycles == b.stats.gpu_cycles
        assert a.collisions.as_sorted_pairs() == b.collisions.as_sorted_pairs()

    def test_depth_order_in_image(self, small_config):
        """The nearer box must win the contested pixels."""
        import dataclasses

        from repro.geometry.primitives import make_box
        from repro.geometry.vec import Mat4, Vec3
        from repro.gpu.commands import DrawCommand, Frame
        from tests.conftest import simple_projection, simple_view

        near = DrawCommand(
            make_box(Vec3(0.4, 0.4, 0.4)), Mat4.translation(Vec3(0, 0, 1.0)),
            color=(1.0, 0.0, 0.0),
        )
        far = DrawCommand(
            make_box(Vec3(0.6, 0.6, 0.6)), Mat4.translation(Vec3(0, 0, -1.0)),
            color=(0.0, 1.0, 0.0),
        )
        aspect = small_config.screen_width / small_config.screen_height
        frame = Frame(
            draws=(far, near), view=simple_view(),
            projection=simple_projection(aspect),
        )
        result = GPU(small_config, rbcd_enabled=False).render_frame(frame)
        cy, cx = small_config.screen_height // 2, small_config.screen_width // 2
        assert result.color[cy, cx, 0] == pytest.approx(1.0)  # red wins centre
