"""Primitive mesh generators: closedness, winding, volumes, validation."""

import numpy as np
import pytest

from repro.geometry.primitives import (
    make_box,
    make_capsule,
    make_concave_l,
    make_cylinder,
    make_icosphere,
    make_plane,
    make_torus,
    make_uv_sphere,
)
from repro.geometry.vec import Vec3


def signed_volume(mesh) -> float:
    tri = mesh.triangle_corners()
    return float(
        np.einsum("ij,ij->i", tri[:, 0], np.cross(tri[:, 1], tri[:, 2])).sum() / 6.0
    )


SOLIDS = {
    "box": lambda: make_box(Vec3(0.5, 0.5, 0.5)),
    "uv_sphere": lambda: make_uv_sphere(0.5),
    "icosphere": lambda: make_icosphere(0.5, subdivisions=2),
    "cylinder": lambda: make_cylinder(0.5, 1.0),
    "capsule": lambda: make_capsule(0.25, 1.0),
    "torus": lambda: make_torus(0.5, 0.15),
    "concave_l": lambda: make_concave_l(),
}


@pytest.mark.parametrize("name", SOLIDS)
def test_solids_are_closed(name):
    assert SOLIDS[name]().is_closed(), f"{name} has boundary or non-manifold edges"


@pytest.mark.parametrize("name", SOLIDS)
def test_solids_wound_outward(name):
    assert signed_volume(SOLIDS[name]()) > 0, f"{name} is wound inward"


@pytest.mark.parametrize("name", SOLIDS)
def test_no_degenerate_faces(name):
    assert SOLIDS[name]().degenerate_faces().size == 0


class TestVolumes:
    """Discretized volumes approach the analytic solids from below."""

    def test_box(self):
        # Full extents are twice the half extents: 1 x 2 x 3.
        assert signed_volume(make_box(Vec3(0.5, 1.0, 1.5))) == pytest.approx(6.0)

    def test_sphere_converges(self):
        exact = 4.0 / 3.0 * np.pi * 0.5**3
        coarse = signed_volume(make_icosphere(0.5, subdivisions=1))
        fine = signed_volume(make_icosphere(0.5, subdivisions=3))
        assert coarse < fine < exact
        assert fine == pytest.approx(exact, rel=0.02)

    def test_cylinder(self):
        exact = np.pi * 0.25
        vol = signed_volume(make_cylinder(0.5, 1.0, segments=64))
        assert vol == pytest.approx(exact, rel=0.01)

    def test_capsule(self):
        exact = np.pi * 0.25**2 * 1.0 + 4.0 / 3.0 * np.pi * 0.25**3
        vol = signed_volume(make_capsule(0.25, 1.0, rings=16, segments=48))
        assert vol == pytest.approx(exact, rel=0.01)

    def test_torus(self):
        exact = 2 * np.pi**2 * 0.5 * 0.15**2
        vol = signed_volume(make_torus(0.5, 0.15, 48, 32))
        assert vol == pytest.approx(exact, rel=0.01)

    def test_concave_l(self):
        # Two arms of 1.0 x 0.4 minus the double-counted 0.4 x 0.4 corner,
        # extruded 0.4 deep.
        exact = (2 * 1.0 * 0.4 - 0.4 * 0.4) * 0.4
        assert signed_volume(make_concave_l(1.0, 0.4, 0.4)) == pytest.approx(exact)


class TestBounds:
    def test_sphere_radius(self):
        mesh = make_uv_sphere(0.75)
        radii = np.linalg.norm(mesh.vertices, axis=1)
        assert np.allclose(radii, 0.75)

    def test_capsule_total_height(self):
        mesh = make_capsule(0.25, 1.0)
        box = mesh.aabb()
        assert box.hi.z == pytest.approx(0.75)
        assert box.lo.z == pytest.approx(-0.75)

    def test_plane_is_flat(self):
        mesh = make_plane(2.0, subdivisions=3)
        assert np.allclose(mesh.vertices[:, 2], 0.0)
        assert mesh.face_count == 2 * 9

    def test_plane_faces_positive_z(self):
        assert np.allclose(make_plane().face_normals(), [[0, 0, 1], [0, 0, 1]])


class TestValidation:
    def test_box_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_box(Vec3(0, 1, 1))

    def test_sphere_rejects_bad_params(self):
        with pytest.raises(ValueError):
            make_uv_sphere(-1.0)
        with pytest.raises(ValueError):
            make_uv_sphere(1.0, rings=1)
        with pytest.raises(ValueError):
            make_icosphere(1.0, subdivisions=9)

    def test_cylinder_rejects_bad_params(self):
        with pytest.raises(ValueError):
            make_cylinder(0.5, -1.0)
        with pytest.raises(ValueError):
            make_cylinder(0.5, 1.0, segments=2)

    def test_torus_rejects_bad_radii(self):
        with pytest.raises(ValueError):
            make_torus(0.2, 0.5)

    def test_capsule_rejects_bad_params(self):
        with pytest.raises(ValueError):
            make_capsule(-0.1, 1.0)

    def test_plane_rejects_bad_subdivisions(self):
        with pytest.raises(ValueError):
            make_plane(subdivisions=0)

    def test_concave_l_rejects_bad_arms(self):
        with pytest.raises(ValueError):
            make_concave_l(arm_length=0.3, arm_width=0.4)
