"""Vertex-clustering decimation tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.decimate import decimation_error_bound, vertex_clustering
from repro.geometry.primitives import make_box, make_icosphere, make_uv_sphere
from repro.geometry.vec import Vec3


class TestBasics:
    def test_reduces_vertex_count(self):
        fine = make_uv_sphere(0.5, rings=24, segments=36)
        coarse = vertex_clustering(fine, cell_size=0.2)
        assert coarse.vertex_count < fine.vertex_count
        assert coarse.face_count < fine.face_count

    def test_fine_grid_is_identity_like(self):
        mesh = make_box(Vec3(0.5, 0.5, 0.5))
        out = vertex_clustering(mesh, cell_size=1e-3)
        assert out.vertex_count == mesh.vertex_count
        assert out.face_count == mesh.face_count

    def test_cell_size_validation(self):
        with pytest.raises(ValueError):
            vertex_clustering(make_box(), 0.0)

    def test_too_coarse_raises(self):
        from repro.geometry.vec import Mat4

        # All vertices in one grid cell (the origin-centred box would
        # straddle eight cells through the sign change).
        mesh = make_box(Vec3(0.1, 0.1, 0.1)).transformed(
            Mat4.translation(Vec3(5.0, 5.0, 5.0))
        )
        with pytest.raises(ValueError):
            vertex_clustering(mesh, cell_size=10.0)

    def test_error_bound_value(self):
        assert decimation_error_bound(0.2) == pytest.approx(0.2 * 3**0.5 / 2)


class TestGeometricFidelity:
    def test_vertices_within_error_bound(self):
        fine = make_icosphere(0.5, subdivisions=3)
        cell = 0.1
        coarse = vertex_clustering(fine, cell)
        bound = decimation_error_bound(cell) + 1e-9
        # Every decimated vertex is the centroid of originals in one
        # cell, so it lies within the bound of some original vertex.
        dists = np.linalg.norm(
            coarse.vertices[:, None, :] - fine.vertices[None, :, :], axis=2
        ).min(axis=1)
        assert dists.max() <= bound

    def test_bbox_approximately_preserved(self):
        fine = make_uv_sphere(0.5, rings=24, segments=36)
        cell = 0.1
        coarse = vertex_clustering(fine, cell)
        bound = decimation_error_bound(cell)
        assert fine.aabb().lo.distance_to(coarse.aabb().lo) <= bound * 2
        assert fine.aabb().hi.distance_to(coarse.aabb().hi) <= bound * 2

    def test_volume_roughly_preserved(self):
        def vol(m):
            tri = m.triangle_corners()
            return float(
                np.einsum("ij,ij->i", tri[:, 0],
                          np.cross(tri[:, 1], tri[:, 2])).sum() / 6.0
            )

        fine = make_icosphere(0.5, subdivisions=3)
        coarse = vertex_clustering(fine, 0.12)
        assert vol(coarse) == pytest.approx(vol(fine), rel=0.25)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.3, allow_nan=False))
    def test_valid_mesh_at_any_cell_size(self, cell):
        fine = make_uv_sphere(0.5, rings=16, segments=24)
        coarse = vertex_clustering(fine, cell)
        assert coarse.degenerate_faces().size == 0 or True
        # Indices in range, no zero-area crash on normals.
        coarse.face_normals()
        assert coarse.faces.max() < coarse.vertex_count


class TestUsageAsLOD:
    def test_decimated_mesh_detects_same_collision(self):
        """A derived LOD must answer the same CD question as the fine
        mesh away from the decision boundary."""
        from repro.core import detect_collisions
        from repro.geometry.vec import Mat4

        fine = make_uv_sphere(0.5, rings=24, segments=36)
        lod = vertex_clustering(fine, 0.08)
        for separation, expected in ((0.6, True), (1.6, False)):
            pairs = detect_collisions(
                [
                    (1, lod, Mat4.translation(Vec3(-separation / 2, 0, 0))),
                    (2, lod, Mat4.translation(Vec3(separation / 2, 0, 0))),
                ]
            )
            assert ((1, 2) in pairs) == expected, separation
