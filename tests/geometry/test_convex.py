"""Quickhull convex hull tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.convex import convex_hull, hull_vertices
from repro.geometry.primitives import make_box
from repro.geometry.vec import Vec3


def assert_all_inside(points: np.ndarray, hull, tol: float = 1e-9) -> None:
    normals = hull.face_normals()
    tri = hull.triangle_corners()
    offsets = np.einsum("ij,ij->i", normals, tri[:, 0])
    signed = points @ normals.T - offsets
    assert signed.max() <= tol


class TestBasics:
    def test_tetrahedron_is_its_own_hull(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1.0]])
        hull = convex_hull(pts)
        assert hull.vertex_count == 4
        assert hull.face_count == 4
        assert hull.is_closed()

    def test_cube_hull(self):
        hull = convex_hull(make_box(Vec3(0.5, 0.5, 0.5)).vertices)
        assert hull.vertex_count == 8
        assert hull.face_count == 12

    def test_interior_points_removed(self):
        cube = make_box(Vec3(1, 1, 1)).vertices
        interior = np.random.RandomState(3).uniform(-0.5, 0.5, size=(50, 3))
        hull = convex_hull(np.vstack([cube, interior]))
        assert hull.vertex_count == 8

    def test_duplicate_points_ok(self):
        pts = np.vstack([make_box().vertices] * 3)
        hull = convex_hull(pts)
        assert hull.vertex_count == 8

    def test_hull_is_outward_wound(self):
        hull = convex_hull(np.random.RandomState(0).randn(100, 3))
        tri = hull.triangle_corners()
        vol = float(
            np.einsum("ij,ij->i", tri[:, 0], np.cross(tri[:, 1], tri[:, 2])).sum() / 6.0
        )
        assert vol > 0

    def test_hull_vertices_helper(self):
        verts = hull_vertices(make_box().vertices)
        assert verts.shape == (8, 3)


class TestDegenerateInputs:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            convex_hull(np.zeros((3, 3)))

    def test_coincident_points(self):
        with pytest.raises(ValueError):
            convex_hull(np.ones((10, 3)))

    def test_collinear_points(self):
        pts = np.outer(np.linspace(0, 1, 10), [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            convex_hull(pts)

    def test_coplanar_points(self):
        rng = np.random.RandomState(1)
        pts = np.column_stack([rng.randn(20), rng.randn(20), np.zeros(20)])
        with pytest.raises(ValueError):
            convex_hull(pts)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            convex_hull(np.zeros((5, 2)))


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=8, max_value=120))
    def test_hull_contains_all_points(self, seed, n):
        pts = np.random.RandomState(seed).randn(n, 3)
        hull = convex_hull(pts)
        assert hull.is_closed()
        assert_all_inside(pts, hull, tol=1e-7 * max(1.0, np.abs(pts).max()))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_hull_of_hull_is_identical_vertex_set(self, seed):
        pts = np.random.RandomState(seed).randn(40, 3)
        hull1 = convex_hull(pts)
        hull2 = convex_hull(hull1.vertices)
        set1 = {tuple(np.round(v, 9)) for v in hull1.vertices}
        set2 = {tuple(np.round(v, 9)) for v in hull2.vertices}
        assert set1 == set2

    def test_hull_invariant_to_point_order(self):
        rng = np.random.RandomState(5)
        pts = rng.randn(60, 3)
        hull_a = convex_hull(pts)
        hull_b = convex_hull(pts[::-1])
        set_a = {tuple(np.round(v, 9)) for v in hull_a.vertices}
        set_b = {tuple(np.round(v, 9)) for v in hull_b.vertices}
        assert set_a == set_b
