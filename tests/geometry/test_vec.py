"""Vec3 / Mat4 math kernel tests."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.vec import (
    Mat4,
    Vec3,
    transform_directions,
    transform_points,
    transform_points_homogeneous,
)

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
vec3s = st.builds(Vec3, finite, finite, finite)
angles = st.floats(min_value=-2 * math.pi, max_value=2 * math.pi, allow_nan=False)


class TestVec3Arithmetic:
    def test_add_sub(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)

    def test_neg(self):
        assert -Vec3(1, -2, 3) == Vec3(-1, 2, -3)

    def test_scalar_mul_div(self):
        assert Vec3(1, 2, 3) * 2 == Vec3(2, 4, 6)
        assert 2 * Vec3(1, 2, 3) == Vec3(2, 4, 6)
        assert Vec3(2, 4, 6) / 2 == Vec3(1, 2, 3)

    def test_indexing_and_iteration(self):
        v = Vec3(7, 8, 9)
        assert (v[0], v[1], v[2]) == (7, 8, 9)
        assert list(v) == [7, 8, 9]

    def test_from_array_roundtrip(self):
        v = Vec3.from_array(np.array([1.5, 2.5, 3.5]))
        assert np.allclose(v.to_array(), [1.5, 2.5, 3.5])

    def test_units(self):
        assert Vec3.unit_x().cross(Vec3.unit_y()) == Vec3.unit_z()

    @given(vec3s, vec3s)
    def test_add_commutes(self, a, b):
        assert (a + b).is_close(b + a)

    @given(vec3s)
    def test_sub_self_is_zero(self, a):
        assert (a - a).is_close(Vec3.zero())


class TestVec3Products:
    def test_dot(self):
        assert Vec3(1, 2, 3).dot(Vec3(4, 5, 6)) == 32

    def test_cross_orthogonal(self):
        a, b = Vec3(1, 2, 3), Vec3(4, 5, 6)
        c = a.cross(b)
        assert abs(c.dot(a)) < 1e-12
        assert abs(c.dot(b)) < 1e-12

    @given(vec3s, vec3s)
    def test_cross_antisymmetric(self, a, b):
        assert a.cross(b).is_close(-(b.cross(a)), tol=1e-6)

    def test_length(self):
        assert Vec3(3, 4, 0).length() == pytest.approx(5.0)
        assert Vec3(3, 4, 0).length_squared() == pytest.approx(25.0)

    def test_normalized(self):
        n = Vec3(0, 0, 10).normalized()
        assert n.is_close(Vec3.unit_z())

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            Vec3.zero().normalized()

    def test_lerp_endpoints(self):
        a, b = Vec3(0, 0, 0), Vec3(2, 4, 6)
        assert a.lerp(b, 0.0).is_close(a)
        assert a.lerp(b, 1.0).is_close(b)
        assert a.lerp(b, 0.5).is_close(Vec3(1, 2, 3))

    def test_min_max_with(self):
        a, b = Vec3(1, 5, 3), Vec3(2, 4, 3)
        assert a.min_with(b) == Vec3(1, 4, 3)
        assert a.max_with(b) == Vec3(2, 5, 3)

    def test_distance(self):
        assert Vec3(0, 0, 0).distance_to(Vec3(0, 3, 4)) == pytest.approx(5.0)

    def test_scaled_by(self):
        assert Vec3(1, 2, 3).scaled_by(Vec3(2, 3, 4)) == Vec3(2, 6, 12)


class TestMat4Constructors:
    def test_identity(self):
        assert Mat4.identity().transform_point(Vec3(1, 2, 3)) == Vec3(1, 2, 3)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Mat4(np.eye(3))

    def test_translation(self):
        m = Mat4.translation(Vec3(1, 2, 3))
        assert m.transform_point(Vec3(0, 0, 0)) == Vec3(1, 2, 3)
        # Directions are unaffected by translation.
        assert m.transform_direction(Vec3(1, 0, 0)) == Vec3(1, 0, 0)

    def test_scaling_uniform_and_per_axis(self):
        assert Mat4.scaling(2.0).transform_point(Vec3(1, 1, 1)) == Vec3(2, 2, 2)
        m = Mat4.scaling(Vec3(1, 2, 3))
        assert m.transform_point(Vec3(1, 1, 1)) == Vec3(1, 2, 3)

    @pytest.mark.parametrize(
        "rot,src,dst",
        [
            (Mat4.rotation_z(math.pi / 2), Vec3(1, 0, 0), Vec3(0, 1, 0)),
            (Mat4.rotation_x(math.pi / 2), Vec3(0, 1, 0), Vec3(0, 0, 1)),
            (Mat4.rotation_y(math.pi / 2), Vec3(0, 0, 1), Vec3(1, 0, 0)),
        ],
    )
    def test_axis_rotations(self, rot, src, dst):
        assert rot.transform_point(src).is_close(dst)

    @given(angles)
    def test_rotation_axis_matches_rotation_z(self, angle):
        general = Mat4.rotation_axis(Vec3.unit_z(), angle)
        assert general.is_close(Mat4.rotation_z(angle), tol=1e-9)

    @given(vec3s, angles)
    def test_rotation_preserves_length(self, v, angle):
        rotated = Mat4.rotation_axis(Vec3(1, 2, 3), angle).transform_point(v)
        assert rotated.length() == pytest.approx(v.length(), abs=1e-6)

    def test_trs_order(self):
        m = Mat4.trs(Vec3(10, 0, 0), Mat4.rotation_z(math.pi / 2), 2.0)
        # Scale, then rotate, then translate.
        assert m.transform_point(Vec3(1, 0, 0)).is_close(Vec3(10, 2, 0))


class TestMat4ViewProjection:
    def test_look_at_centers_target(self):
        view = Mat4.look_at(Vec3(0, 0, 5), Vec3(0, 0, 0), Vec3(0, 1, 0))
        p = view.transform_point(Vec3(0, 0, 0))
        assert p.is_close(Vec3(0, 0, -5))

    def test_look_at_preserves_up(self):
        view = Mat4.look_at(Vec3(0, 0, 5), Vec3(0, 0, 0), Vec3(0, 1, 0))
        up_point = view.transform_point(Vec3(0, 1, 0))
        assert up_point.y > 0

    def test_perspective_near_far_map_to_ndc(self):
        proj = Mat4.perspective(math.radians(90), 1.0, 1.0, 10.0)
        near = proj.transform_point(Vec3(0, 0, -1.0))
        far = proj.transform_point(Vec3(0, 0, -10.0))
        assert near.z == pytest.approx(-1.0)
        assert far.z == pytest.approx(1.0)

    def test_perspective_validation(self):
        with pytest.raises(ValueError):
            Mat4.perspective(1.0, 1.0, -1.0, 10.0)
        with pytest.raises(ValueError):
            Mat4.perspective(1.0, 1.0, 10.0, 1.0)

    def test_orthographic_maps_corners(self):
        proj = Mat4.orthographic(-2, 2, -1, 1, 0.0, 10.0)
        p = proj.transform_point(Vec3(2, 1, -10))
        assert p.is_close(Vec3(1, 1, 1))

    def test_inverse_roundtrip(self):
        m = Mat4.translation(Vec3(1, 2, 3)) @ Mat4.rotation_y(0.7) @ Mat4.scaling(2.0)
        assert (m @ m.inverse()).is_close(Mat4.identity(), tol=1e-9)

    def test_matmul_point(self):
        m = Mat4.translation(Vec3(1, 0, 0))
        assert (m @ Vec3(0, 0, 0)) == Vec3(1, 0, 0)

    def test_point_at_infinity_raises(self):
        proj = Mat4.perspective(math.radians(90), 1.0, 0.1, 10.0)
        with pytest.raises(ValueError):
            proj.transform_point(Vec3(0, 0, 0))  # w == 0 at the eye plane


class TestBatchTransforms:
    def test_transform_points_matches_scalar(self):
        m = Mat4.perspective(math.radians(60), 1.5, 0.1, 50.0) @ Mat4.translation(
            Vec3(0, 0, -5)
        )
        pts = np.array([[0.0, 0.0, 0.0], [1.0, 2.0, 1.0], [-1.0, 0.5, -2.0]])
        batch = transform_points(m, pts)
        for i in range(pts.shape[0]):
            single = m.transform_point(Vec3.from_array(pts[i]))
            assert np.allclose(batch[i], single.to_array())

    def test_transform_points_shape_validation(self):
        with pytest.raises(ValueError):
            transform_points(Mat4.identity(), np.zeros((3, 2)))

    def test_transform_directions_ignores_translation(self):
        m = Mat4.translation(Vec3(5, 5, 5))
        d = transform_directions(m, np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(d, [[1.0, 0.0, 0.0]])

    def test_homogeneous_keeps_w(self):
        m = Mat4.perspective(math.radians(60), 1.0, 0.1, 10.0)
        hom = transform_points_homogeneous(m, np.array([[0.0, 0.0, -2.0]]))
        assert hom.shape == (1, 4)
        assert hom[0, 3] == pytest.approx(2.0)

    def test_normal_matrix_orthogonal_for_rotation(self):
        m = Mat4.rotation_y(0.5)
        nm = m.normal_matrix()
        assert np.allclose(nm @ nm.T, np.eye(3), atol=1e-12)
