"""TriangleMesh tests."""

import numpy as np
import pytest

from repro.geometry.mesh import TriangleMesh
from repro.geometry.primitives import make_box, make_uv_sphere
from repro.geometry.vec import Mat4, Vec3


def single_triangle() -> TriangleMesh:
    return TriangleMesh(
        vertices=[[0, 0, 0], [1, 0, 0], [0, 1, 0]],
        faces=[[0, 1, 2]],
    )


class TestValidation:
    def test_bad_vertex_shape(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 2)), [[0, 1, 2]])

    def test_bad_face_shape(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), [[0, 1]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((0, 3)), np.zeros((0, 3), dtype=int))

    def test_out_of_range_indices(self):
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), [[0, 1, 3]])
        with pytest.raises(ValueError):
            TriangleMesh(np.zeros((3, 3)), [[0, 1, -1]])

    def test_arrays_read_only(self):
        mesh = single_triangle()
        with pytest.raises(ValueError):
            mesh.vertices[0, 0] = 5.0


class TestDerivedData:
    def test_counts(self):
        mesh = make_box()
        assert mesh.vertex_count == 8
        assert mesh.face_count == 12

    def test_face_normal_direction(self):
        mesh = single_triangle()
        n = mesh.face_normals()
        assert np.allclose(n, [[0, 0, 1]])

    def test_face_areas(self):
        mesh = single_triangle()
        assert mesh.face_areas()[0] == pytest.approx(0.5)

    def test_surface_area_of_unit_box(self):
        assert make_box(Vec3(0.5, 0.5, 0.5)).surface_area() == pytest.approx(6.0)

    def test_centroid_of_box_is_origin(self):
        assert np.allclose(make_box().centroid(), [0, 0, 0], atol=1e-12)

    def test_aabb(self):
        box = make_box(Vec3(1, 2, 3)).aabb()
        assert box.lo == Vec3(-1, -2, -3)
        assert box.hi == Vec3(1, 2, 3)

    def test_degenerate_faces_detected(self):
        mesh = TriangleMesh(
            [[0, 0, 0], [1, 0, 0], [0, 1, 0], [2, 0, 0]],
            [[0, 1, 2], [0, 1, 3]],  # second face is collinear
        )
        assert list(mesh.degenerate_faces()) == [1]

    def test_is_closed(self):
        assert make_box().is_closed()
        assert not single_triangle().is_closed()

    def test_triangle_corners_shape(self):
        assert make_box().triangle_corners().shape == (12, 3, 3)


class TestTransforms:
    def test_transformed_translates(self):
        mesh = make_box().transformed(Mat4.translation(Vec3(1, 0, 0)))
        assert np.allclose(mesh.centroid(), [1, 0, 0], atol=1e-12)

    def test_mirror_flips_winding(self):
        mesh = make_box()
        mirrored = mesh.transformed(Mat4.scaling(Vec3(-1, 1, 1)))
        # Signed volume must stay positive (outward winding preserved).
        def signed_volume(m):
            tri = m.triangle_corners()
            return float(
                np.einsum("ij,ij->i", tri[:, 0], np.cross(tri[:, 1], tri[:, 2])).sum()
                / 6.0
            )

        assert signed_volume(mesh) > 0
        assert signed_volume(mirrored) > 0

    def test_flipped_inverts_volume(self):
        mesh = make_uv_sphere()
        tri = mesh.flipped().triangle_corners()
        vol = float(
            np.einsum("ij,ij->i", tri[:, 0], np.cross(tri[:, 1], tri[:, 2])).sum() / 6.0
        )
        assert vol < 0

    def test_merged_with(self):
        a = make_box()
        b = make_box().transformed(Mat4.translation(Vec3(3, 0, 0)))
        merged = a.merged_with(b)
        assert merged.vertex_count == 16
        assert merged.face_count == 24
        assert merged.aabb().hi.x == pytest.approx(3.5)

    def test_repr(self):
        assert "vertices=8" in repr(make_box())
