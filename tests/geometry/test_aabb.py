"""AABB tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.vec import Mat4, Vec3

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def aabbs(draw):
    xs = sorted((draw(coord), draw(coord)))
    ys = sorted((draw(coord), draw(coord)))
    zs = sorted((draw(coord), draw(coord)))
    return AABB(Vec3(xs[0], ys[0], zs[0]), Vec3(xs[1], ys[1], zs[1]))


class TestConstruction:
    def test_invalid_ordering_raises(self):
        with pytest.raises(ValueError):
            AABB(Vec3(1, 0, 0), Vec3(0, 1, 1))

    def test_from_points(self):
        box = AABB.from_points(np.array([[0, 0, 0], [1, 2, 3], [-1, 1, 1]]))
        assert box.lo == Vec3(-1, 0, 0)
        assert box.hi == Vec3(1, 2, 3)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            AABB.from_points(np.zeros((0, 3)))

    def test_from_center_half_extents(self):
        box = AABB.from_center_half_extents(Vec3(1, 1, 1), Vec3(0.5, 1.0, 1.5))
        assert box.lo == Vec3(0.5, 0.0, -0.5)
        assert box.hi == Vec3(1.5, 2.0, 2.5)

    def test_negative_half_extents_raise(self):
        with pytest.raises(ValueError):
            AABB.from_center_half_extents(Vec3.zero(), Vec3(-1, 0, 0))


class TestQueries:
    def test_center_size_volume(self):
        box = AABB(Vec3(0, 0, 0), Vec3(2, 4, 6))
        assert box.center == Vec3(1, 2, 3)
        assert box.size == Vec3(2, 4, 6)
        assert box.volume() == pytest.approx(48.0)
        assert box.surface_area() == pytest.approx(2 * (8 + 24 + 12))

    def test_contains_point(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert box.contains_point(Vec3(0.5, 0.5, 0.5))
        assert box.contains_point(Vec3(1, 1, 1))  # boundary inclusive
        assert not box.contains_point(Vec3(1.01, 0.5, 0.5))

    def test_overlap_cases(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert a.overlaps(AABB(Vec3(0.5, 0.5, 0.5), Vec3(2, 2, 2)))
        assert a.overlaps(AABB(Vec3(1, 0, 0), Vec3(2, 1, 1)))  # touching counts
        assert not a.overlaps(AABB(Vec3(1.1, 0, 0), Vec3(2, 1, 1)))
        # Disjoint along only one axis is still disjoint.
        assert not a.overlaps(AABB(Vec3(0, 0, 2), Vec3(1, 1, 3)))

    def test_union_contains_both(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        b = AABB(Vec3(2, -1, 0), Vec3(3, 0.5, 2))
        u = a.union(b)
        assert u.contains_aabb(a) and u.contains_aabb(b)

    def test_intersection(self):
        a = AABB(Vec3(0, 0, 0), Vec3(2, 2, 2))
        b = AABB(Vec3(1, 1, 1), Vec3(3, 3, 3))
        inter = a.intersection(b)
        assert inter == AABB(Vec3(1, 1, 1), Vec3(2, 2, 2))

    def test_intersection_disjoint_is_none(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        b = AABB(Vec3(5, 5, 5), Vec3(6, 6, 6))
        assert a.intersection(b) is None

    def test_expanded(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)).expanded(0.5)
        assert a.lo == Vec3(-0.5, -0.5, -0.5)
        assert a.hi == Vec3(1.5, 1.5, 1.5)

    def test_corners_count_and_bounds(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 2, 3))
        corners = box.corners()
        assert corners.shape == (8, 3)
        assert AABB.from_points(corners) == box

    @given(aabbs(), aabbs())
    def test_overlap_symmetric(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)

    @given(aabbs(), aabbs())
    def test_intersection_consistent_with_overlap(self, a, b):
        inter = a.intersection(b)
        assert (inter is not None) == a.overlaps(b)
        if inter is not None:
            assert a.contains_aabb(inter) and b.contains_aabb(inter)


class TestTransformed:
    def test_translation_moves_box(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        moved = box.transformed(Mat4.translation(Vec3(5, 0, 0)))
        assert moved == AABB(Vec3(5, 0, 0), Vec3(6, 1, 1))

    def test_rotation_is_conservative(self):
        box = AABB(Vec3(-1, -1, -1), Vec3(1, 1, 1))
        rotated = box.transformed(Mat4.rotation_z(np.pi / 4))
        # The rotated cube's x-extent grows to sqrt(2).
        assert rotated.hi.x == pytest.approx(np.sqrt(2.0))
        assert rotated.hi.z == pytest.approx(1.0)

    @given(aabbs(), st.floats(min_value=-3, max_value=3, allow_nan=False))
    def test_transform_bounds_original_corners(self, box, angle):
        m = Mat4.rotation_y(angle) @ Mat4.translation(Vec3(1, 2, 3))
        out = box.transformed(m)
        from repro.geometry.vec import transform_points

        pts = transform_points(m, box.corners())
        for p in pts:
            assert out.expanded(1e-6).contains_point(Vec3.from_array(p))
