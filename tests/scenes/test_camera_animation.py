"""Camera and animator tests."""

import math

import pytest

from repro.geometry.vec import Mat4, Vec3
from repro.scenes.animation import (
    Compose,
    Drop,
    LinearPath,
    Orbit,
    Oscillate,
    Spin,
    Static,
)
from repro.scenes.camera import Camera


def position_of(animator, t: float) -> Vec3:
    return animator.transform(t).transform_point(Vec3.zero())


class TestCamera:
    def test_view_places_target_in_front(self):
        camera = Camera(eye=Vec3(0, 0, 5), target=Vec3(0, 0, 0))
        view = camera.view()
        assert view.transform_point(Vec3(0, 0, 0)).z == pytest.approx(-5.0)

    def test_projection_uses_aspect(self):
        camera = Camera(eye=Vec3(0, 0, 5), target=Vec3(0, 0, 0), fov_y_deg=90)
        p_wide = camera.projection(2.0)
        p_square = camera.projection(1.0)
        assert p_wide.a[0, 0] == pytest.approx(p_square.a[0, 0] / 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Camera(eye=Vec3.zero(), target=Vec3.unit_z(), fov_y_deg=0)
        with pytest.raises(ValueError):
            Camera(eye=Vec3.zero(), target=Vec3.unit_z(), near=2.0, far=1.0)

    def test_moved_and_dollied(self):
        camera = Camera(eye=Vec3(0, 0, 5), target=Vec3(0, 0, 0))
        assert camera.moved(Vec3(1, 0, 5)).eye == Vec3(1, 0, 5)
        dollied = camera.dollied(Vec3(0, 0, -1))
        assert dollied.eye == Vec3(0, 0, 4)
        assert dollied.target == Vec3(0, 0, -1)


class TestAnimators:
    def test_static(self):
        anim = Static.at(Vec3(1, 2, 3), scale=2.0)
        assert position_of(anim, 0.0) == Vec3(1, 2, 3)
        assert position_of(anim, 99.0) == Vec3(1, 2, 3)

    def test_linear_path(self):
        anim = LinearPath(Vec3(0, 0, 0), Vec3(1, 0, 0))
        assert position_of(anim, 2.0).is_close(Vec3(2, 0, 0))

    def test_oscillate_period(self):
        anim = Oscillate(Vec3.zero(), Vec3.unit_x(), amplitude=2.0, period=1.0)
        assert position_of(anim, 0.0).is_close(Vec3.zero(), tol=1e-9)
        assert position_of(anim, 0.25).is_close(Vec3(2, 0, 0), tol=1e-9)
        assert position_of(anim, 1.0).is_close(Vec3.zero(), tol=1e-6)

    def test_oscillate_phase(self):
        anim = Oscillate(Vec3.zero(), Vec3.unit_x(), 1.0, 1.0, phase=math.pi / 2)
        assert position_of(anim, 0.0).is_close(Vec3(1, 0, 0), tol=1e-9)

    def test_orbit_radius_constant(self):
        anim = Orbit(Vec3(5, 0, 0), radius=2.0, period=1.0)
        for t in (0.0, 0.13, 0.5, 0.77):
            p = position_of(anim, t)
            assert (p - Vec3(5, 0, 0)).length() == pytest.approx(2.0)

    def test_orbit_plane(self):
        anim = Orbit(Vec3.zero(), radius=1.0, period=1.0, axis=Vec3.unit_y())
        for t in (0.0, 0.3, 0.6):
            assert position_of(anim, t).y == pytest.approx(0.0, abs=1e-12)

    def test_spin_rotates_in_place(self):
        anim = Spin(Vec3(1, 0, 0), Vec3.unit_z(), period=1.0)
        # The object's origin stays put.
        assert position_of(anim, 0.37) == Vec3(1, 0, 0)
        # A local point is rotated about the object origin, then placed:
        # (2,0,0) at half period -> (-2,0,0) local -> (-1,0,0) world.
        q = anim.transform(0.5).transform_point(Vec3(2, 0, 0))
        assert q.is_close(Vec3(-1, 0, 0), tol=1e-9)

    def test_drop_clamps_at_floor(self):
        anim = Drop(Vec3(0, 10, 0), floor_y=1.0)
        assert position_of(anim, 0.0).y == pytest.approx(10.0)
        assert position_of(anim, 100.0).y == pytest.approx(1.0)

    def test_drop_parabolic(self):
        anim = Drop(Vec3(0, 10, 0), floor_y=0.0, gravity=2.0)
        assert position_of(anim, 1.0).y == pytest.approx(9.0)

    def test_compose(self):
        anim = Compose(
            outer=Static(Mat4.translation(Vec3(10, 0, 0))),
            inner=LinearPath(Vec3.zero(), Vec3(1, 0, 0)),
        )
        assert position_of(anim, 1.0).is_close(Vec3(11, 0, 0))
