"""Stress workload tests."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import make_stress

CFG = GPUConfig().with_screen(160, 96)


class TestMakeStress:
    def test_object_count(self):
        workload = make_stress(num_objects=10, detail=1)
        assert len(workload.scene.collisionable_names) == 10

    def test_minimum_objects(self):
        with pytest.raises(ValueError):
            make_stress(num_objects=1)

    def test_deterministic_for_seed(self):
        a = make_stress(8, detail=1, seed=5)
        b = make_stress(8, detail=1, seed=5)
        fa = a.scene.frame_at(0.7, CFG)
        fb = b.scene.frame_at(0.7, CFG)
        import numpy as np

        for da, db in zip(fa.draws, fb.draws):
            assert np.allclose(da.model.a, db.model.a)

    def test_produces_collisions_over_run(self):
        workload = make_stress(num_objects=12, detail=1)
        gpu = GPU(CFG, rbcd_enabled=True)
        found = set()
        for t in workload.times(5):
            result = gpu.render_frame(workload.scene.frame_at(float(t), CFG))
            found |= result.collisions.pairs
        assert found

    def test_alias_encodes_size(self):
        assert make_stress(num_objects=7, detail=1).alias == "stress7"
