"""Benchmark workload tests (run at reduced resolution)."""

import numpy as np
import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import (
    BENCHMARKS,
    all_workloads,
    workload_by_alias,
)

CFG = GPUConfig().with_screen(200, 120)


@pytest.fixture(scope="module", params=BENCHMARKS)
def rendered(request):
    """One RBCD-rendered mid-run frame per workload (cached per module)."""
    workload = workload_by_alias(request.param, detail=1)
    frame = workload.scene.frame_at(workload.duration_s / 2.0, CFG)
    result = GPU(CFG, rbcd_enabled=True).render_frame(frame)
    return workload, result


class TestWorkloadSet:
    def test_table1_set(self):
        aliases = [w.alias for w in all_workloads(detail=1)]
        assert aliases == list(BENCHMARKS)

    def test_unknown_alias_rejected(self):
        with pytest.raises(ValueError):
            workload_by_alias("doom")

    def test_times_span_duration(self):
        workload = workload_by_alias("cap", detail=1)
        times = workload.times(5)
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(workload.duration_s)

    def test_times_validation(self):
        with pytest.raises(ValueError):
            workload_by_alias("cap", detail=1).times(0)


class TestRenderedFrames:
    def test_produces_fragments_and_collisionables(self, rendered):
        workload, result = rendered
        stats = result.stats
        assert stats.fragments_produced > 1000, workload.alias
        assert stats.rbcd_fragments_in > 0, workload.alias

    def test_collisionable_fraction_is_minor(self, rendered):
        """Most screen fragments belong to untagged scenery (the
        deferred-culling overhead story depends on this)."""
        workload, result = rendered
        frac = result.stats.rbcd_fragments_in / result.stats.fragments_produced
        assert frac < 0.5, workload.alias

    def test_deferred_culling_produces_tagged_primitives(self, rendered):
        workload, result = rendered
        assert result.stats.triangles_tagged_to_be_culled > 0, workload.alias

    def test_cd_meshes_finer_than_render_meshes(self, rendered):
        workload, _ = rendered
        finer = 0
        for obj in workload.scene.objects:
            if obj.collisionable and obj.cd_mesh is not None:
                assert obj.cd_mesh.vertex_count >= obj.mesh.vertex_count
                finer += 1
        assert finer > 0, workload.alias

    def test_collisions_occur_during_run(self):
        """Every benchmark's choreography must produce real contacts."""
        for workload in all_workloads(detail=1):
            gpu = GPU(CFG, rbcd_enabled=True)
            found = set()
            for t in workload.times(6):
                frame = workload.scene.frame_at(float(t), CFG)
                result = gpu.render_frame(frame)
                found |= result.collisions.pairs
            assert found, f"{workload.alias} produced no collisions"


class TestOverflowOrdering:
    def test_stacked_benchmarks_overflow_more(self):
        """Table 3's ordering: temple and sleepy stress the ZEB, cap and
        crazy barely touch it."""
        cfg4 = CFG.with_rbcd(list_length=4, z_bits=18, id_bits=13)
        rates = {}
        for alias in BENCHMARKS:
            workload = workload_by_alias(alias, detail=1)
            gpu = GPU(cfg4, rbcd_enabled=True)
            total_stats = sum(
                gpu.render_frame(workload.scene.frame_at(float(t), cfg4)).stats
                for t in workload.times(3)
            )
            rates[alias] = total_stats.zeb_overflow_rate
        assert max(rates["temple"], rates["sleepy"]) > max(
            rates["cap"], rates["crazy"]
        )
