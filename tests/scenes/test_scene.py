"""Scene container tests."""

import pytest

from repro.geometry.primitives import make_box, make_uv_sphere
from repro.geometry.vec import Mat4, Vec3
from repro.gpu.config import GPUConfig
from repro.scenes.animation import LinearPath, Static
from repro.scenes.camera import Camera
from repro.scenes.scene import Scene

CFG = GPUConfig().with_screen(64, 64)


def make_scene() -> Scene:
    scene = Scene(Camera(eye=Vec3(0, 0, 5), target=Vec3.zero()))
    scene.add_object("floor", make_box(Vec3(5, 0.1, 5)))
    scene.add_object("ball", make_uv_sphere(0.5),
                     LinearPath(Vec3(0, 2, 0), Vec3(0, -1, 0)),
                     collisionable=True)
    scene.add_object("crate", make_box(), Static.at(Vec3(2, 0, 0)),
                     collisionable=True)
    return scene


class TestConstruction:
    def test_duplicate_names_rejected(self):
        scene = make_scene()
        with pytest.raises(ValueError):
            scene.add_object("ball", make_box())

    def test_object_ids_assigned_in_order(self):
        scene = make_scene()
        assert scene.object_id("ball") == 0
        assert scene.object_id("crate") == 1
        assert scene.collisionable_names == ["ball", "crate"]

    def test_name_of_roundtrip(self):
        scene = make_scene()
        assert scene.name_of(scene.object_id("crate")) == "crate"
        with pytest.raises(KeyError):
            scene.name_of(99)

    def test_non_collisionable_has_no_id(self):
        scene = make_scene()
        with pytest.raises(KeyError):
            scene.object_id("floor")


class TestFrameCompilation:
    def test_frame_carries_object_ids(self):
        frame = make_scene().frame_at(0.0, CFG)
        ids = [d.object_id for d in frame.draws]
        assert ids == [None, 0, 1]

    def test_animation_advances(self):
        scene = make_scene()
        frame0 = scene.frame_at(0.0, CFG)
        frame1 = scene.frame_at(1.0, CFG)
        p0 = frame0.draws[1].model.transform_point(Vec3.zero())
        p1 = frame1.draws[1].model.transform_point(Vec3.zero())
        assert p0.y == pytest.approx(2.0)
        assert p1.y == pytest.approx(1.0)

    def test_raster_only_flag(self):
        frame = make_scene().frame_at(0.0, CFG, raster_only=True)
        assert frame.raster_only

    def test_camera_animator_used(self):
        base = Camera(eye=Vec3(0, 0, 5), target=Vec3.zero())
        scene = Scene(base, camera_animator=lambda t: base.dollied(Vec3(t, 0, 0)))
        assert scene.camera_at(2.0).eye.x == pytest.approx(2.0)


class TestWorldSync:
    def test_world_has_collisionables_only(self):
        world = make_scene().collision_world()
        assert len(world) == 2

    def test_sync_matches_frame_transforms(self):
        scene = make_scene()
        world = scene.collision_world()
        scene.sync_world(world, 1.0)
        obj = next(o for o in world.objects() if o.object_id == 0)
        assert obj.model.transform_point(Vec3.zero()).y == pytest.approx(1.0)

    def test_cd_mesh_used_for_world(self):
        scene = Scene(Camera(eye=Vec3(0, 0, 5), target=Vec3.zero()))
        fine = make_uv_sphere(0.5, 24, 36)
        scene.add_object("ball", make_uv_sphere(0.5), collisionable=True,
                         cd_mesh=fine)
        world = scene.collision_world()
        assert world.objects()[0].mesh.vertex_count == fine.vertex_count
