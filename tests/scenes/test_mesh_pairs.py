"""The render/CD mesh pairs must describe the same surface.

The substitution documented in DESIGN.md (decimated render mesh +
full-detail CD mesh) is only valid if both tessellate the *same* shape;
these tests bound the geometric discrepancy for every collisionable
object of every benchmark.
"""

import numpy as np
import pytest

from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias


def signed_volume(mesh) -> float:
    tri = mesh.triangle_corners()
    return float(
        np.einsum("ij,ij->i", tri[:, 0], np.cross(tri[:, 1], tri[:, 2])).sum() / 6.0
    )


import functools


@functools.cache
def mesh_pairs(alias):
    # Detail 2 is the evaluation setting; detail 1 is a deliberately
    # coarse fast-test LOD whose inscribed tessellations undershoot the
    # smooth surface by design.
    workload = workload_by_alias(alias, detail=2)
    return [
        (obj.name, obj.mesh, obj.cd_mesh)
        for obj in workload.scene.objects
        if obj.collisionable and obj.cd_mesh is not None
    ]


@pytest.mark.parametrize("alias", BENCHMARKS)
class TestMeshPairAgreement:
    def test_bounding_boxes_agree(self, alias):
        for name, render, cd in mesh_pairs(alias):
            rb, cb = render.aabb(), cd.aabb()
            scale = max(rb.size.x, rb.size.y, rb.size.z)
            assert rb.lo.distance_to(cb.lo) < 0.05 * scale, (alias, name)
            assert rb.hi.distance_to(cb.hi) < 0.05 * scale, (alias, name)

    def test_volumes_agree(self, alias):
        for name, render, cd in mesh_pairs(alias):
            vr, vc = signed_volume(render), signed_volume(cd)
            assert vc > 0 and vr > 0, (alias, name)
            # Inscribed tessellations approach the smooth volume from
            # below; the finer CD mesh is at least as big and within 20%.
            assert vc >= 0.95 * vr, (alias, name)
            assert vc <= 1.2 * vr, (alias, name)

    def test_centroids_agree(self, alias):
        for name, render, cd in mesh_pairs(alias):
            scale = max(render.aabb().size.x, 1e-6)
            delta = np.linalg.norm(render.centroid() - cd.centroid())
            assert delta < 0.1 * scale, (alias, name)

    def test_cd_mesh_strictly_finer(self, alias):
        finer = 0
        for name, render, cd in mesh_pairs(alias):
            if cd.vertex_count > render.vertex_count:
                finer += 1
        assert finer > 0, alias
