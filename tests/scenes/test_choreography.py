"""Workload choreography: every benchmark exercises both CD outcomes."""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import BENCHMARKS, workload_by_alias

CFG = GPUConfig().with_screen(200, 120)


@pytest.fixture(scope="module", params=BENCHMARKS)
def run_pairs(request):
    """Per-frame RBCD pair sets over a 6-frame run (cached per module)."""
    workload = workload_by_alias(request.param, detail=1)
    gpu = GPU(CFG, rbcd_enabled=True)
    per_frame = []
    for t in workload.times(6):
        result = gpu.render_frame(workload.scene.frame_at(float(t), CFG))
        per_frame.append({(p.id_a, p.id_b) for p in result.collisions.pairs})
    return workload, per_frame


class TestChoreography:
    def test_some_frames_have_collisions(self, run_pairs):
        workload, per_frame = run_pairs
        assert any(per_frame), workload.alias

    def test_collision_set_changes_over_time(self, run_pairs):
        """Objects approach and separate: the pair set must not be
        constant across the run (static scenes would make the CD-cost
        comparison degenerate)."""
        workload, per_frame = run_pairs
        assert len({frozenset(p) for p in per_frame}) > 1, workload.alias

    def test_not_everything_collides(self, run_pairs):
        """Most object pairs never touch: CD must mostly return 'no'."""
        workload, per_frame = run_pairs
        n = len(workload.scene.collisionable_names)
        all_pairs = n * (n - 1) // 2
        seen = set().union(*per_frame)
        assert len(seen) < all_pairs / 2, workload.alias

    def test_determinism(self, run_pairs):
        workload, per_frame = run_pairs
        gpu = GPU(CFG, rbcd_enabled=True)
        t = float(workload.times(6)[2])
        again = gpu.render_frame(workload.scene.frame_at(t, CFG))
        assert {(p.id_a, p.id_b) for p in again.collisions.pairs} == per_frame[2]


class TestSoftwareAgreement:
    def test_rbcd_pairs_are_broad_phase_subset(self, run_pairs):
        """Every RBCD-detected contact implies AABB overlap."""
        workload, per_frame = run_pairs
        world = workload.scene.collision_world()
        for t, pairs in zip(workload.times(6), per_frame):
            workload.scene.sync_world(world, float(t))
            broad = set(world.detect("broad").pairs)
            assert pairs <= broad, (workload.alias, float(t))
