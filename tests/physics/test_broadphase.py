"""Broad-phase tests: correctness and brute-force/SAP agreement."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.primitives import make_box
from repro.geometry.vec import Mat4, Vec3
from repro.physics.broadphase import (
    aabb_bruteforce_pairs,
    sweep_and_prune_pairs,
    world_aabb_of_mesh,
    world_aabbs,
)
from repro.physics.counters import OpCounter


def boxes_at(positions, half=0.5):
    return [
        AABB.from_center_half_extents(Vec3(*p), Vec3(half, half, half))
        for p in positions
    ]


class TestWorldAABB:
    def test_transformed_bounds(self):
        mesh = make_box(Vec3(0.5, 0.5, 0.5))
        ops = OpCounter()
        box = world_aabb_of_mesh(mesh.vertices, Mat4.translation(Vec3(2, 0, 0)), ops)
        assert box.lo.is_close(Vec3(1.5, -0.5, -0.5))
        assert ops.flop > 0 and ops.mem > 0

    def test_rotation_recomputes_tight_bounds(self):
        mesh = make_box(Vec3(0.5, 0.5, 0.5))
        box = world_aabb_of_mesh(mesh.vertices, Mat4.rotation_z(np.pi / 4), OpCounter())
        assert box.hi.x == pytest.approx(np.sqrt(0.5))

    def test_world_aabbs_length_check(self):
        with pytest.raises(ValueError):
            world_aabbs([make_box().vertices], [], OpCounter())

    def test_op_count_scales_with_vertices(self):
        small = OpCounter()
        world_aabb_of_mesh(make_box().vertices, Mat4.identity(), small)
        from repro.geometry.primitives import make_uv_sphere

        big = OpCounter()
        world_aabb_of_mesh(make_uv_sphere(1.0, 16, 24).vertices, Mat4.identity(), big)
        assert big.total > small.total


class TestBruteForce:
    def test_overlapping_pair_found(self):
        boxes = boxes_at([(0, 0, 0), (0.8, 0, 0), (5, 0, 0)])
        result = aabb_bruteforce_pairs(boxes, [10, 20, 30], OpCounter())
        assert result.pairs == [(10, 20)]

    def test_pairs_canonically_ordered(self):
        boxes = boxes_at([(0, 0, 0), (0.5, 0, 0)])
        result = aabb_bruteforce_pairs(boxes, [9, 2], OpCounter())
        assert result.pairs == [(2, 9)]

    def test_ops_quadratic(self):
        small_ops = OpCounter()
        aabb_bruteforce_pairs(boxes_at([(i * 5, 0, 0) for i in range(4)]),
                              list(range(4)), small_ops)
        big_ops = OpCounter()
        aabb_bruteforce_pairs(boxes_at([(i * 5, 0, 0) for i in range(8)]),
                              list(range(8)), big_ops)
        assert big_ops.cmp == pytest.approx(small_ops.cmp * 28 / 6)

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            aabb_bruteforce_pairs(boxes_at([(0, 0, 0)]), [], OpCounter())


class TestSweepAndPrune:
    def test_matches_bruteforce_simple(self):
        positions = [(0, 0, 0), (0.8, 0, 0), (0.8, 0.8, 0), (5, 5, 5)]
        boxes = boxes_at(positions)
        ids = [1, 2, 3, 4]
        brute = aabb_bruteforce_pairs(boxes, ids, OpCounter())
        sap = sweep_and_prune_pairs(boxes, ids, OpCounter())
        assert brute.pairs == sap.pairs

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-10, max_value=10, allow_nan=False),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
                st.floats(min_value=-10, max_value=10, allow_nan=False),
            ),
            min_size=0,
            max_size=15,
        ),
        st.integers(min_value=0, max_value=2),
    )
    def test_sap_equals_bruteforce_property(self, positions, axis):
        boxes = boxes_at(positions)
        ids = list(range(len(boxes)))
        brute = aabb_bruteforce_pairs(boxes, ids, OpCounter())
        sap = sweep_and_prune_pairs(boxes, ids, OpCounter(), axis=axis)
        assert brute.pairs == sap.pairs

    def test_sap_cheaper_on_spread_scenes(self):
        # Widely separated boxes: SAP's sweep avoids most pair tests.
        boxes = boxes_at([(i * 10, 0, 0) for i in range(30)])
        ids = list(range(30))
        brute_ops = OpCounter()
        aabb_bruteforce_pairs(boxes, ids, brute_ops)
        sap_ops = OpCounter()
        sweep_and_prune_pairs(boxes, ids, sap_ops)
        assert sap_ops.cmp < brute_ops.cmp

    def test_axis_validation(self):
        with pytest.raises(ValueError):
            sweep_and_prune_pairs([], [], OpCounter(), axis=3)

    def test_fewer_than_two_boxes(self):
        result = sweep_and_prune_pairs(boxes_at([(0, 0, 0)]), [1], OpCounter())
        assert result.pairs == []
