"""Rigid-body dynamics (collision response) tests."""

import pytest

from repro.geometry.primitives import make_box, make_uv_sphere
from repro.geometry.vec import Vec3
from repro.physics.dynamics import PhysicsWorld, RigidBody
from repro.physics.world import CollisionWorld


def world_with_floor():
    pw = PhysicsWorld()
    pw.add_body(RigidBody(1, make_box(Vec3(5, 0.5, 5)), Vec3(0, 0, 0),
                          inverse_mass=0.0))
    return pw


def run_loop(pw, body_ids, steps, dt=1 / 60):
    cw = CollisionWorld()
    for bid in body_ids:
        cw.add_object(bid, pw.body(bid).mesh)
    for _ in range(steps):
        for bid in body_ids:
            cw.set_transform(bid, pw.body(bid).model_matrix())
        pairs = cw.detect("broad+narrow").pairs
        pw.step(dt, pairs)


class TestIntegration:
    def test_gravity_accelerates(self):
        pw = PhysicsWorld()
        pw.add_body(RigidBody(1, make_box(), Vec3(0, 10, 0)))
        pw.integrate(1.0)
        body = pw.body(1)
        assert body.velocity.y == pytest.approx(-9.81)
        assert body.position.y < 10

    def test_static_bodies_do_not_move(self):
        pw = world_with_floor()
        pw.integrate(1.0)
        assert pw.body(1).position == Vec3(0, 0, 0)

    def test_dt_validation(self):
        with pytest.raises(ValueError):
            PhysicsWorld().integrate(0.0)

    def test_duplicate_body_rejected(self):
        pw = world_with_floor()
        with pytest.raises(ValueError):
            pw.add_body(RigidBody(1, make_box(), Vec3.zero()))

    def test_negative_inverse_mass_rejected(self):
        with pytest.raises(ValueError):
            RigidBody(1, make_box(), Vec3.zero(), inverse_mass=-1.0)


class TestContactResponse:
    def test_ball_rests_on_floor(self):
        pw = world_with_floor()
        pw.add_body(RigidBody(2, make_uv_sphere(0.5), Vec3(0, 3, 0)))
        run_loop(pw, [1, 2], steps=240)
        # Floor top at y=0.5, sphere radius 0.5 -> rest at ~1.0.
        assert pw.body(2).position.y == pytest.approx(1.0, abs=0.05)
        assert abs(pw.body(2).velocity.y) < 0.5

    def test_restitution_bounces(self):
        # Restitution is the min of the pair's, so the floor needs it too.
        pw = PhysicsWorld()
        pw.add_body(RigidBody(1, make_box(Vec3(5, 0.5, 5)), Vec3(0, 0, 0),
                              inverse_mass=0.0, restitution=0.9))
        ball = pw.add_body(
            RigidBody(2, make_uv_sphere(0.5), Vec3(0, 2, 0), restitution=0.9)
        )
        heights = []
        cw = CollisionWorld()
        for bid in (1, 2):
            cw.add_object(bid, pw.body(bid).mesh)
        for _ in range(200):
            for bid in (1, 2):
                cw.set_transform(bid, pw.body(bid).model_matrix())
            pw.step(1 / 120, cw.detect("broad+narrow").pairs)
            heights.append(ball.position.y)
        # It must leave the floor again after the first impact.
        first_contact = min(range(len(heights)), key=lambda i: heights[i])
        assert max(heights[first_contact:]) > heights[first_contact] + 0.2

    def test_equal_masses_exchange_momentum_symmetrically(self):
        from repro.geometry.primitives import make_icosphere

        pw = PhysicsWorld(gravity=Vec3.zero())
        # Finer tessellation keeps the EPA facet normal near the centre
        # line; a small lateral leak remains and is tolerated.
        ball = lambda: make_icosphere(0.5, subdivisions=3)
        a = pw.add_body(RigidBody(1, ball(), Vec3(-1.0, 0, 0),
                                  velocity=Vec3(2, 0, 0), restitution=1.0))
        b = pw.add_body(RigidBody(2, ball(), Vec3(1.0, 0, 0),
                                  velocity=Vec3(-2, 0, 0), restitution=1.0))
        run_loop(pw, [1, 2], steps=60)
        # Head-on elastic collision of equal masses: velocities swap.
        assert a.velocity.x == pytest.approx(-2.0, abs=0.15)
        assert b.velocity.x == pytest.approx(2.0, abs=0.15)

    def test_momentum_conserved_without_gravity(self):
        pw = PhysicsWorld(gravity=Vec3.zero())
        a = pw.add_body(RigidBody(1, make_uv_sphere(0.5), Vec3(-1.0, 0.1, 0),
                                  velocity=Vec3(3, 0, 0)))
        b = pw.add_body(RigidBody(2, make_uv_sphere(0.5), Vec3(1.0, -0.1, 0),
                                  velocity=Vec3.zero()))
        before = a.velocity + b.velocity
        run_loop(pw, [1, 2], steps=90)
        after = a.velocity + b.velocity
        assert after.is_close(before, tol=1e-6)

    def test_resolve_skips_separated_false_positives(self):
        pw = PhysicsWorld(gravity=Vec3.zero())
        pw.add_body(RigidBody(1, make_uv_sphere(0.5), Vec3(0, 0, 0)))
        pw.add_body(RigidBody(2, make_uv_sphere(0.5), Vec3(5, 0, 0)))
        resolved = pw.resolve_pairs([(1, 2)])
        assert resolved == 0
        assert pw.body(1).position == Vec3(0, 0, 0)

    def test_two_static_bodies_ignored(self):
        pw = PhysicsWorld()
        pw.add_body(RigidBody(1, make_box(), Vec3(0, 0, 0), inverse_mass=0.0))
        pw.add_body(RigidBody(2, make_box(), Vec3(0.5, 0, 0), inverse_mass=0.0))
        assert pw.resolve_pairs([(1, 2)]) == 0
