"""OpCounter tests."""

import pytest

from repro.physics.counters import OP_KINDS, OpCounter


class TestOpCounter:
    def test_add_by_kind(self):
        ops = OpCounter()
        ops.add("flop", 10)
        ops.add("mem")
        assert ops.flop == 10
        assert ops.mem == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            OpCounter().add("simd", 1)

    def test_add_all(self):
        ops = OpCounter()
        ops.add_all(flop=1, cmp=2, mem=3, branch=4)
        assert ops.total == 10

    def test_counter_addition(self):
        a = OpCounter(flop=1, cmp=2)
        b = OpCounter(mem=3, branch=4)
        c = a + b
        assert (c.flop, c.cmp, c.mem, c.branch) == (1, 2, 3, 4)
        # Originals unchanged.
        assert a.mem == 0

    def test_sum_builtin(self):
        counters = [OpCounter(flop=1), OpCounter(flop=2), OpCounter(flop=3)]
        assert sum(counters).flop == 6

    def test_scaled(self):
        ops = OpCounter(flop=2, mem=4).scaled(0.5)
        assert ops.flop == 1 and ops.mem == 2

    def test_as_dict_covers_all_kinds(self):
        assert set(OpCounter().as_dict()) == set(OP_KINDS)

    def test_repr_readable(self):
        assert "flop" in repr(OpCounter(flop=5))
