"""Triangle-triangle / exact mesh-mesh intersection tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.primitives import make_box, make_concave_l, make_icosphere
from repro.geometry.vec import Mat4, Vec3
from repro.physics.counters import OpCounter
from repro.physics.tritri import mesh_pair_intersect, meshes_intersect, tri_tri_intersect
from repro.physics.world import CollisionWorld


def tri(*points):
    return np.array(points, dtype=np.float64)


class TestTriTri:
    def test_crossing_triangles(self):
        a = tri([0, 0, 0], [2, 0, 0], [0, 2, 0])
        b = tri([0.5, 0.5, -1], [0.5, 0.5, 1], [1.5, 0.5, 0])
        assert tri_tri_intersect(a, b)

    def test_parallel_separated(self):
        a = tri([0, 0, 0], [1, 0, 0], [0, 1, 0])
        b = tri([0, 0, 1], [1, 0, 1], [0, 1, 1])
        assert not tri_tri_intersect(a, b)

    def test_coplanar_overlapping(self):
        a = tri([0, 0, 0], [2, 0, 0], [0, 2, 0])
        b = tri([0.5, 0.5, 0], [2.5, 0.5, 0], [0.5, 2.5, 0])
        assert tri_tri_intersect(a, b)

    def test_coplanar_disjoint(self):
        a = tri([0, 0, 0], [1, 0, 0], [0, 1, 0])
        b = tri([5, 5, 0], [6, 5, 0], [5, 6, 0])
        assert not tri_tri_intersect(a, b)

    def test_shared_edge_counts_as_touching(self):
        a = tri([0, 0, 0], [1, 0, 0], [0, 1, 0])
        b = tri([0, 0, 0], [1, 0, 0], [0, -1, 0])
        assert tri_tri_intersect(a, b)

    def test_piercing_through_interior(self):
        a = tri([-1, -1, 0], [2, -1, 0], [0, 2, 0])
        b = tri([0.2, 0.2, -0.5], [0.3, 0.2, 0.5], [0.25, 0.4, 0.5])
        assert tri_tri_intersect(a, b)

    def test_near_miss_above_plane(self):
        a = tri([0, 0, 0], [1, 0, 0], [0, 1, 0])
        b = tri([0.2, 0.2, 0.01], [0.4, 0.2, 0.3], [0.2, 0.4, 0.3])
        assert not tri_tri_intersect(a, b)

    def test_symmetry(self):
        rng = np.random.RandomState(0)
        for _ in range(30):
            a = rng.randn(3, 3)
            b = rng.randn(3, 3)
            assert tri_tri_intersect(a, b) == tri_tri_intersect(b, a)


class TestMeshPairs:
    def test_overlapping_boxes(self):
        box = make_box(Vec3(0.5, 0.5, 0.5))
        assert mesh_pair_intersect(
            box, Mat4.identity(), box, Mat4.translation(Vec3(0.8, 0, 0))
        )

    def test_separated_boxes(self):
        box = make_box(Vec3(0.5, 0.5, 0.5))
        assert not mesh_pair_intersect(
            box, Mat4.identity(), box, Mat4.translation(Vec3(1.4, 0, 0))
        )

    def test_concave_notch_true_negative(self):
        """The exact oracle agrees with RBCD on the Figure 2 scene:
        a probe inside the concave notch does not touch the L."""
        l_shape = make_concave_l(1.0, 0.4, 0.4)
        probe = make_box(Vec3(0.1, 0.1, 0.1))
        assert not mesh_pair_intersect(
            l_shape, Mat4.identity(), probe, Mat4.translation(Vec3(0.7, 0.7, 0.0))
        )

    def test_concave_arm_true_positive(self):
        l_shape = make_concave_l(1.0, 0.4, 0.4)
        probe = make_box(Vec3(0.1, 0.1, 0.1))
        assert mesh_pair_intersect(
            l_shape, Mat4.identity(), probe, Mat4.translation(Vec3(0.3, 0.35, 0.0))
        )

    def test_ops_counted_and_large(self):
        sphere = make_icosphere(0.5, subdivisions=2)
        exact_ops = OpCounter()
        mesh_pair_intersect(
            sphere, Mat4.identity(), sphere, Mat4.translation(Vec3(0.7, 0, 0)),
            exact_ops,
        )
        assert exact_ops.total > 0

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.2, max_value=2.0, allow_nan=False))
    def test_agrees_with_gjk_on_convex(self, distance):
        """On convex shapes the exact test and GJK must agree away from
        the tessellation boundary."""
        if abs(distance - 1.0) < 0.05:
            return
        from repro.physics.gjk import gjk_intersect
        from repro.physics.shapes import ConvexShape

        sphere = make_icosphere(0.5, subdivisions=2)
        model = Mat4.translation(Vec3(distance, 0, 0))
        exact = mesh_pair_intersect(sphere, Mat4.identity(), sphere, model)
        a = ConvexShape(sphere.vertices)
        b = ConvexShape(sphere.vertices)
        b.update_transform(model)
        assert exact == gjk_intersect(a, b).intersecting


class TestWorldExactMode:
    def test_exact_mode_pairs(self):
        world = CollisionWorld()
        world.add_object(1, make_box(Vec3(0.5, 0.5, 0.5)))
        world.add_object(2, make_box(Vec3(0.5, 0.5, 0.5)))
        world.set_transform(2, Mat4.translation(Vec3(0.8, 0, 0)))
        result = world.detect("broad+exact")
        assert result.pairs == [(1, 2)]
        assert result.mode == "broad+exact"

    def test_exact_rejects_hull_false_positive(self):
        world = CollisionWorld()
        world.add_object(1, make_concave_l(1.0, 0.4, 0.4))
        world.add_object(2, make_box(Vec3(0.1, 0.1, 0.1)))
        world.set_transform(2, Mat4.translation(Vec3(0.7, 0.7, 0.0)))
        assert world.detect("broad+narrow").pairs == [(1, 2)]  # hull FP
        assert world.detect("broad+exact").pairs == []          # exact TN

    def test_exact_costs_more_than_gjk(self):
        world = CollisionWorld()
        world.add_object(1, make_icosphere(0.5, subdivisions=2))
        world.add_object(2, make_icosphere(0.5, subdivisions=2))
        world.set_transform(2, Mat4.translation(Vec3(0.7, 0, 0)))
        gjk_cost = world.detect("broad+narrow").ops.total
        exact_cost = world.detect("broad+exact").ops.total
        assert exact_cost > 3 * gjk_cost
