"""GJK tests: analytic cases and property-based sphere ground truth."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.primitives import make_box, make_icosphere, make_uv_sphere
from repro.geometry.vec import Mat4, Vec3
from repro.physics.counters import OpCounter
from repro.physics.gjk import gjk_intersect
from repro.physics.shapes import ConvexShape


def box_shape(half=0.5):
    return ConvexShape(make_box(Vec3(half, half, half)).vertices)


def moved(shape, offset: Vec3):
    shape.update_transform(Mat4.translation(offset))
    return shape


class TestBoxes:
    @pytest.mark.parametrize("dx,expected", [
        (0.0, True), (0.5, True), (0.99, True), (1.0, True),
        (1.01, False), (2.0, False), (10.0, False),
    ])
    def test_axis_separation(self, dx, expected):
        a = box_shape()
        b = moved(box_shape(), Vec3(dx, 0, 0))
        assert gjk_intersect(a, b).intersecting == expected

    def test_diagonal_separation(self):
        a = box_shape()
        b = moved(box_shape(), Vec3(0.9, 0.9, 0.9))
        assert gjk_intersect(a, b).intersecting
        b = moved(box_shape(), Vec3(1.1, 1.1, 1.1))
        assert not gjk_intersect(a, b).intersecting

    def test_rotated_box_corner_hit(self):
        # A 45-degree rotated box reaches sqrt(2)/2 along x.
        a = box_shape()
        b = box_shape()
        b.update_transform(
            Mat4.translation(Vec3(1.1, 0, 0)) @ Mat4.rotation_z(np.pi / 4)
        )
        assert gjk_intersect(a, b).intersecting  # 0.5 + 0.707 > 1.1
        b.update_transform(
            Mat4.translation(Vec3(1.3, 0, 0)) @ Mat4.rotation_z(np.pi / 4)
        )
        assert not gjk_intersect(a, b).intersecting

    def test_containment(self):
        outer = box_shape(2.0)
        inner = box_shape(0.2)
        assert gjk_intersect(outer, inner).intersecting

    def test_symmetry(self):
        a = box_shape()
        b = moved(box_shape(), Vec3(0.7, 0.3, 0.1))
        assert gjk_intersect(a, b).intersecting == gjk_intersect(b, a).intersecting


class TestSpheresGroundTruth:
    """Discretized spheres vs the exact sphere-sphere test."""

    RADIUS = 0.5
    # A fine icosphere's hull radius is slightly under the true radius;
    # keep a tolerance band around the decision boundary.
    TOL = 0.02

    def make(self):
        return ConvexShape(make_icosphere(self.RADIUS, subdivisions=3).vertices)

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=2.5, allow_nan=False),
        st.floats(min_value=0.0, max_value=np.pi, allow_nan=False),
        st.floats(min_value=0.0, max_value=2 * np.pi, allow_nan=False),
    )
    def test_matches_analytic_spheres(self, distance, theta, phi):
        boundary = 2 * self.RADIUS
        if abs(distance - boundary) < self.TOL:
            return  # too close to the tessellation-dependent boundary
        offset = Vec3(
            distance * np.sin(theta) * np.cos(phi),
            distance * np.sin(theta) * np.sin(phi),
            distance * np.cos(theta),
        )
        a = self.make()
        b = moved(self.make(), offset)
        assert gjk_intersect(a, b).intersecting == (distance < boundary)


class TestInstrumentation:
    def test_ops_counted(self):
        ops = OpCounter()
        gjk_intersect(box_shape(), moved(box_shape(), Vec3(3, 0, 0)), ops)
        assert ops.flop > 0 and ops.cmp > 0

    def test_larger_shapes_cost_more(self):
        small_ops = OpCounter()
        gjk_intersect(box_shape(), moved(box_shape(), Vec3(3, 0, 0)), small_ops)
        big = ConvexShape(make_uv_sphere(0.5, 24, 36).vertices)
        big2 = moved(ConvexShape(make_uv_sphere(0.5, 24, 36).vertices), Vec3(3, 0, 0))
        big_ops = OpCounter()
        gjk_intersect(big, big2, big_ops)
        assert big_ops.total > small_ops.total

    def test_iteration_bound_respected(self):
        result = gjk_intersect(box_shape(), moved(box_shape(), Vec3(3, 0, 0)),
                               max_iterations=2)
        assert result.iterations <= 2

    def test_result_reports_simplex(self):
        result = gjk_intersect(box_shape(), moved(box_shape(), Vec3(0.5, 0, 0)))
        assert result.intersecting
        assert 1 <= len(result.simplex) <= 4
        assert len(result.simplex) == len(result.simplex_witnesses)

    def test_coincident_shapes(self):
        a = box_shape()
        b = box_shape()
        assert gjk_intersect(a, b).intersecting
