"""ConvexShape support-function tests."""

import numpy as np
import pytest

from repro.geometry.primitives import make_box
from repro.geometry.vec import Mat4, Vec3
from repro.physics.counters import OpCounter
from repro.physics.shapes import ConvexShape, minkowski_support


class TestSupport:
    def test_axis_support_on_box(self):
        shape = ConvexShape(make_box(Vec3(0.5, 1.0, 1.5)).vertices)
        sup = shape.support(np.array([1.0, 0.0, 0.0]))
        assert sup.point[0] == pytest.approx(0.5)
        sup = shape.support(np.array([0.0, 0.0, -1.0]))
        assert sup.point[2] == pytest.approx(-1.5)

    def test_support_scales_with_direction_invariance(self):
        shape = ConvexShape(make_box().vertices)
        a = shape.support(np.array([1.0, 2.0, 3.0]))
        b = shape.support(np.array([10.0, 20.0, 30.0]))
        assert np.allclose(a.point, b.point)

    def test_support_after_transform(self):
        shape = ConvexShape(make_box(Vec3(0.5, 0.5, 0.5)).vertices)
        shape.update_transform(Mat4.translation(Vec3(10, 0, 0)))
        sup = shape.support(np.array([1.0, 0.0, 0.0]))
        assert sup.point[0] == pytest.approx(10.5)

    def test_support_after_rotation(self):
        shape = ConvexShape(make_box(Vec3(0.5, 0.5, 0.5)).vertices)
        shape.update_transform(Mat4.rotation_z(np.pi / 4))
        sup = shape.support(np.array([1.0, 0.0, 0.0]))
        assert sup.point[0] == pytest.approx(np.sqrt(0.5))

    def test_support_index_valid(self):
        shape = ConvexShape(make_box().vertices)
        sup = shape.support(np.array([1.0, 1.0, 1.0]))
        assert np.allclose(shape.world_points[sup.index], sup.point)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvexShape(np.zeros((0, 3)))
        with pytest.raises(ValueError):
            ConvexShape(np.zeros((4, 2)))


class TestOpCounting:
    def test_support_ops_linear_in_vertices(self):
        shape = ConvexShape(make_box().vertices)
        ops = OpCounter()
        shape.support(np.array([1.0, 0.0, 0.0]), ops)
        assert ops.cmp == 8  # one comparison per vertex

    def test_transform_ops_counted(self):
        shape = ConvexShape(make_box().vertices)
        ops = OpCounter()
        shape.update_transform(Mat4.identity(), ops)
        assert ops.flop == 8 * 18


class TestMinkowskiSupport:
    def test_difference_support(self):
        a = ConvexShape(make_box(Vec3(0.5, 0.5, 0.5)).vertices)
        b = ConvexShape(make_box(Vec3(0.5, 0.5, 0.5)).vertices)
        b.update_transform(Mat4.translation(Vec3(2, 0, 0)))
        point, ia, ib = minkowski_support(a, b, np.array([1.0, 0.0, 0.0]))
        # sup_A(+x) = 0.5; sup_B(-x) = 1.5 -> difference = -1.0.
        assert point[0] == pytest.approx(-1.0)
        assert 0 <= ia < 8 and 0 <= ib < 8

    def test_center(self):
        shape = ConvexShape(make_box().vertices)
        shape.update_transform(Mat4.translation(Vec3(3, 0, 0)))
        assert np.allclose(shape.center(), [3, 0, 0])
