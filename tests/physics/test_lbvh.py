"""LBVH broad-phase properties: codes, sort, tree, and pair exactness.

Four layers, each testable on its own:

* Morton codes — encode/decode round-trip over the full 10-bit grid,
  bit-interleaving structure, locality of single-step moves;
* radix sort — permutation validity, sortedness, and *stability*
  (byte-for-byte agreement with ``np.argsort(kind="stable")``),
  including heavy-duplicate key sets;
* tree structure — every leaf reachable exactly once from the root,
  parent/child consistency, internal AABBs exactly containing their
  children, covered leaf ranges partitioning correctly;
* the end guarantee — the pair set equals brute force *exactly* on
  randomized clouds and on the degenerate ones that break naive Morton
  builds (all boxes identical, all disjoint, zero-extent points).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3
from repro.physics.broadphase import aabb_bruteforce_pairs
from repro.physics.counters import OpCounter
from repro.physics.lbvh import (
    GRID_MAX,
    build_lbvh,
    compact_bits_3,
    expand_bits_3,
    lbvh_broadphase_pairs,
    morton_decode,
    morton_encode,
    quantize_centroids,
    radix_argsort,
)


def boxes_from_arrays(lo: np.ndarray, hi: np.ndarray) -> list[AABB]:
    return [AABB(Vec3(*lo[i]), Vec3(*hi[i])) for i in range(lo.shape[0])]


def random_cloud(seed: int, n: int, scale: float = 10.0, extent: float = 1.0):
    rng = np.random.default_rng(seed)
    c = rng.uniform(-scale, scale, (n, 3))
    e = rng.uniform(0.0, extent, (n, 3))
    return boxes_from_arrays(c - e, c + e)


# ---------------------------------------------------------------------------
# Morton codes
# ---------------------------------------------------------------------------


class TestMorton:
    def test_round_trip_full_grid_axis(self):
        v = np.arange(GRID_MAX + 1, dtype=np.uint64)
        assert np.array_equal(compact_bits_3(expand_bits_3(v)), v)

    @given(
        ix=st.integers(min_value=0, max_value=GRID_MAX),
        iy=st.integers(min_value=0, max_value=GRID_MAX),
        iz=st.integers(min_value=0, max_value=GRID_MAX),
    )
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_round_trip(self, ix, iy, iz):
        dx, dy, dz = morton_decode(morton_encode(
            np.array([ix]), np.array([iy]), np.array([iz])
        ))
        assert (int(dx[0]), int(dy[0]), int(dz[0])) == (ix, iy, iz)

    def test_bit_interleaving_structure(self):
        # Bit b of axis x lands at code bit 3b+2 (y at 3b+1, z at 3b).
        for b in range(10):
            one = np.array([1 << b], dtype=np.uint64)
            zero = np.array([0], dtype=np.uint64)
            assert int(morton_encode(one, zero, zero)[0]) == 1 << (3 * b + 2)
            assert int(morton_encode(zero, one, zero)[0]) == 1 << (3 * b + 1)
            assert int(morton_encode(zero, zero, one)[0]) == 1 << (3 * b)

    def test_codes_are_30_bit(self):
        g = np.full(4, GRID_MAX, dtype=np.uint64)
        assert int(morton_encode(g, g, g)[0]) == (1 << 30) - 1

    def test_quantize_degenerate_extent_collapses_to_zero(self):
        centers = np.zeros((5, 3))
        grid = quantize_centroids(centers, np.zeros(3), np.zeros(3))
        assert np.array_equal(grid, np.zeros((5, 3), dtype=np.int64))

    def test_quantize_bounds_are_inclusive(self):
        centers = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        grid = quantize_centroids(centers, np.zeros(3), np.ones(3))
        assert np.array_equal(grid[0], [0, 0, 0])
        assert np.array_equal(grid[1], [GRID_MAX] * 3)


# ---------------------------------------------------------------------------
# Radix sort
# ---------------------------------------------------------------------------


class TestRadixSort:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_stable_argsort_random_keys(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 1 << 30, size=2000).astype(np.uint64)
        assert np.array_equal(
            radix_argsort(keys), np.argsort(keys, kind="stable")
        )

    def test_matches_stable_argsort_heavy_duplicates(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 4, size=3000).astype(np.uint64)
        assert np.array_equal(
            radix_argsort(keys), np.argsort(keys, kind="stable")
        )

    def test_all_equal_keys_keep_input_order(self):
        keys = np.full(100, 7, dtype=np.uint64)
        assert np.array_equal(radix_argsort(keys), np.arange(100))

    def test_empty_and_singleton(self):
        assert radix_argsort(np.empty(0, dtype=np.uint64)).shape == (0,)
        assert np.array_equal(
            radix_argsort(np.array([42], dtype=np.uint64)), [0]
        )

    @given(st.lists(st.integers(min_value=0, max_value=(1 << 30) - 1), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_matches_stable_argsort_generated(self, values):
        keys = np.array(values, dtype=np.uint64)
        assert np.array_equal(
            radix_argsort(keys), np.argsort(keys, kind="stable")
        )

    def test_counts_ops_per_pass(self):
        ops = OpCounter()
        radix_argsort(np.arange(100, dtype=np.uint64)[::-1].copy(), ops=ops)
        assert ops.mem > 0 and ops.branch > 0


# ---------------------------------------------------------------------------
# Tree invariants
# ---------------------------------------------------------------------------


def collect_leaves(tree):
    """DFS from the root; returns sorted-leaf indices in visit order."""
    leaves = []
    stack = [tree.root]
    while stack:
        node = stack.pop()
        if tree.is_leaf_node(node):
            leaves.append(node - tree.num_internal)
        else:
            stack.append(tree.left[node])
            stack.append(tree.right[node])
    return leaves


class TestTreeInvariants:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 64, 130])
    def test_every_leaf_reachable_exactly_once(self, n):
        tree = build_lbvh(random_cloud(n, n))
        assert sorted(collect_leaves(tree)) == list(range(n))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_internal_boxes_contain_children(self, seed):
        tree = build_lbvh(random_cloud(seed, 90))
        for node in range(tree.num_internal):
            for child in (tree.left[node], tree.right[node]):
                assert np.all(tree.node_lo[node] <= tree.node_lo[child])
                assert np.all(tree.node_hi[node] >= tree.node_hi[child])
                assert tree.parent[child] == node

    def test_root_box_is_scene_box(self):
        boxes = random_cloud(5, 40)
        tree = build_lbvh(boxes)
        lo = np.array([b.lo.to_array() for b in boxes])
        hi = np.array([b.hi.to_array() for b in boxes])
        assert np.array_equal(tree.node_lo[tree.root], lo.min(axis=0))
        assert np.array_equal(tree.node_hi[tree.root], hi.max(axis=0))

    def test_internal_ranges_cover_their_subtrees(self):
        tree = build_lbvh(random_cloud(11, 75))
        for node in range(tree.num_internal):
            subtree = []
            stack = [node]
            while stack:
                cur = stack.pop()
                if tree.is_leaf_node(cur):
                    subtree.append(cur - tree.num_internal)
                else:
                    stack.append(tree.left[cur])
                    stack.append(tree.right[cur])
            assert min(subtree) == tree.first[node]
            assert max(subtree) == tree.last[node]

    def test_identical_codes_still_build_a_valid_tree(self):
        # Every centroid on one grid cell: the index tie-break must
        # keep the radix tree binary and complete.
        boxes = [AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)) for _ in range(33)]
        tree = build_lbvh(boxes)
        assert len(set(tree.codes.tolist())) == 1
        assert sorted(collect_leaves(tree)) == list(range(33))

    def test_single_box_tree(self):
        tree = build_lbvh([AABB(Vec3(0, 0, 0), Vec3(1, 2, 3))])
        assert tree.num_internal == 0
        assert tree.root == 0 and tree.is_leaf_node(0)
        assert np.array_equal(tree.node_hi[0], [1.0, 2.0, 3.0])

    def test_zero_boxes_rejected(self):
        with pytest.raises(ValueError, match="zero boxes"):
            build_lbvh([])


# ---------------------------------------------------------------------------
# Pair exactness vs brute force
# ---------------------------------------------------------------------------


def pairs_of(boxes, ids):
    brute = aabb_bruteforce_pairs(boxes, ids, OpCounter())
    lbvh = lbvh_broadphase_pairs(boxes, ids, OpCounter())
    return brute.pairs, lbvh.pairs


class TestPairExactness:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_clouds(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 120))
        boxes = random_cloud(
            seed, n,
            scale=float(rng.uniform(1.0, 20.0)),
            extent=float(rng.uniform(0.05, 3.0)),
        )
        ids = [int(i) for i in rng.permutation(n * 2)[:n]]
        brute, lbvh = pairs_of(boxes, ids)
        assert brute == lbvh

    def test_all_overlapping(self):
        boxes = [AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)) for _ in range(40)]
        ids = list(range(40))
        brute, lbvh = pairs_of(boxes, ids)
        assert brute == lbvh
        assert len(lbvh) == 40 * 39 // 2

    def test_all_disjoint(self):
        boxes = [
            AABB(Vec3(3.0 * i, 0, 0), Vec3(3.0 * i + 1.0, 1, 1))
            for i in range(40)
        ]
        brute, lbvh = pairs_of(boxes, list(range(40)))
        assert brute == lbvh == []

    def test_zero_extent_points_on_a_spanning_box(self):
        boxes = [
            AABB(Vec3(i * 0.5, 0, 0), Vec3(i * 0.5, 0, 0)) for i in range(20)
        ]
        boxes.append(AABB(Vec3(0, -1, -1), Vec3(10, 1, 1)))
        brute, lbvh = pairs_of(boxes, list(range(21)))
        assert brute == lbvh
        assert len(lbvh) == 20  # the big box touches every point

    def test_touching_boxes_count_as_overlap(self):
        # Closed intervals: shared faces are overlaps, as in brute force.
        boxes = [
            AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)),
            AABB(Vec3(1, 0, 0), Vec3(2, 1, 1)),
        ]
        brute, lbvh = pairs_of(boxes, [5, 3])
        assert brute == lbvh == [(3, 5)]

    def test_small_n(self):
        assert lbvh_broadphase_pairs([], [], OpCounter()).pairs == []
        one = [AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))]
        assert lbvh_broadphase_pairs(one, [7], OpCounter()).pairs == []

    def test_id_mismatch_rejected(self):
        one = [AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))]
        with pytest.raises(ValueError, match="one id per box"):
            lbvh_broadphase_pairs(one, [1, 2], OpCounter())

    def test_ops_are_counted(self):
        boxes = random_cloud(2, 60)
        ops = OpCounter()
        lbvh_broadphase_pairs(boxes, list(range(60)), ops)
        assert ops.cmp > 0 and ops.mem > 0 and ops.branch > 0

    @given(
        data=st.data(),
        n=st.integers(min_value=2, max_value=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_generated_clouds_match_bruteforce(self, data, n):
        # Integer-grid clouds maximize coincident centroids and shared
        # faces — the cases a quantized-code build is likeliest to miss.
        coords = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=-4, max_value=4),
                    st.integers(min_value=-4, max_value=4),
                    st.integers(min_value=-4, max_value=4),
                    st.integers(min_value=0, max_value=3),
                ),
                min_size=n, max_size=n,
            )
        )
        boxes = [
            AABB(
                Vec3(x - e * 0.5, y - e * 0.5, z - e * 0.5),
                Vec3(x + e * 0.5, y + e * 0.5, z + e * 0.5),
            )
            for x, y, z, e in coords
        ]
        brute, lbvh = pairs_of(boxes, list(range(n)))
        assert brute == lbvh


# ---------------------------------------------------------------------------
# World integration
# ---------------------------------------------------------------------------


class TestWorldIntegration:
    def test_lbvh_is_a_registered_broad_algorithm(self):
        from repro.physics.world import BROAD_ALGOS, CollisionWorld

        assert "lbvh" in BROAD_ALGOS
        CollisionWorld("lbvh")  # constructor accepts it

    def test_world_detect_matches_bruteforce_world(self):
        from repro.geometry.primitives import make_box
        from repro.geometry.vec import Mat4
        from repro.physics.world import CollisionWorld

        mesh = make_box(Vec3(0.5, 0.5, 0.5))
        worlds = {
            name: CollisionWorld(name) for name in ("bruteforce", "lbvh")
        }
        rng = np.random.default_rng(8)
        for world in worlds.values():
            for oid in range(12):
                world.add_object(oid, mesh)
        for _ in range(3):
            positions = rng.uniform(-2.0, 2.0, (12, 3))
            results = {}
            for name, world in worlds.items():
                for oid in range(12):
                    world.set_transform(
                        oid, Mat4.translation(Vec3(*positions[oid]))
                    )
                results[name] = world.detect("broad")
            assert results["lbvh"].broad_pairs == results["bruteforce"].broad_pairs
