"""GJK/EPA edge cases: degenerate shapes, deep containment, witnesses."""

import numpy as np
import pytest

from repro.geometry.primitives import make_box, make_icosphere, make_plane
from repro.geometry.vec import Mat4, Vec3
from repro.physics.counters import OpCounter
from repro.physics.epa import epa_penetration
from repro.physics.gjk import gjk_intersect
from repro.physics.shapes import ConvexShape, minkowski_support


def box(half=0.5):
    return ConvexShape(make_box(Vec3(half, half, half)).vertices)


def at(shape, x, y=0.0, z=0.0):
    shape.update_transform(Mat4.translation(Vec3(x, y, z)))
    return shape


class TestDegenerateShapes:
    def test_flat_shape_vs_box(self):
        # A plane (zero thickness) intersecting a box.
        plane = ConvexShape(make_plane(half_size=1.0).vertices)
        assert gjk_intersect(plane, box()).intersecting
        assert not gjk_intersect(plane, at(box(), 0.0, 0.0, 3.0)).intersecting

    def test_point_shape(self):
        point = ConvexShape(np.array([[0.0, 0.0, 0.0]]))
        assert gjk_intersect(point, box()).intersecting
        assert not gjk_intersect(point, at(box(), 2.0)).intersecting

    def test_segment_shape(self):
        segment = ConvexShape(np.array([[-2.0, 0.0, 0.0], [2.0, 0.0, 0.0]]))
        assert gjk_intersect(segment, box()).intersecting
        assert not gjk_intersect(segment, at(box(), 0.0, 3.0)).intersecting

    def test_two_flat_shapes_coplanar_offset(self):
        a = ConvexShape(make_plane(half_size=1.0).vertices)
        b = ConvexShape(make_plane(half_size=1.0).vertices)
        at(b, 0.0, 0.0, 0.5)
        assert not gjk_intersect(a, b).intersecting


class TestContainment:
    def test_deep_containment_fast(self):
        outer = box(5.0)
        inner = box(0.1)
        result = gjk_intersect(outer, inner)
        assert result.intersecting
        assert result.iterations <= 8

    def test_epa_containment_depth(self):
        outer = box(2.0)
        inner = at(box(0.5), 1.0)
        result = epa_penetration(outer, inner)
        # Separating the inner box requires pushing it out through the
        # nearest face: the +x face at distance 2 - (1 - 0.5) = 1.5.
        assert result.depth == pytest.approx(1.5, abs=1e-6)


class TestWitnesses:
    def test_simplex_points_are_minkowski_differences(self):
        a = box()
        b = at(box(), 0.4)
        result = gjk_intersect(a, b)
        for point, (ia, ib) in zip(result.simplex, result.simplex_witnesses):
            reconstructed = a.world_points[ia] - b.world_points[ib]
            assert np.allclose(point, reconstructed)

    def test_minkowski_support_extremal(self):
        a = box()
        b = at(box(), 1.0)
        for direction in (np.eye(3)[0], -np.eye(3)[1], np.array([1.0, 1.0, 0.0])):
            point, _, _ = minkowski_support(a, b, direction)
            # No other A-B difference can be more extreme.
            diffs = a.world_points[:, None, :] - b.world_points[None, :, :]
            assert float(point @ direction) == pytest.approx(
                float((diffs @ direction).max())
            )


class TestRobustness:
    def test_identical_overlap_many_directions(self):
        sphere = make_icosphere(0.5, subdivisions=2)
        a = ConvexShape(sphere.vertices)
        rng = np.random.RandomState(11)
        for _ in range(20):
            direction = rng.randn(3)
            direction /= np.linalg.norm(direction)
            b = ConvexShape(sphere.vertices)
            b.update_transform(Mat4.translation(Vec3.from_array(direction * 0.5)))
            assert gjk_intersect(a, b).intersecting

    def test_separated_many_directions(self):
        sphere = make_icosphere(0.5, subdivisions=2)
        a = ConvexShape(sphere.vertices)
        rng = np.random.RandomState(12)
        for _ in range(20):
            direction = rng.randn(3)
            direction /= np.linalg.norm(direction)
            b = ConvexShape(sphere.vertices)
            b.update_transform(Mat4.translation(Vec3.from_array(direction * 1.3)))
            assert not gjk_intersect(a, b).intersecting

    def test_scaled_world_magnitudes(self):
        """The algorithms must not depend on absolute scale."""
        for scale in (1e-3, 1.0, 1e3):
            a = ConvexShape(make_box(Vec3(0.5, 0.5, 0.5)).vertices * scale)
            b = ConvexShape(make_box(Vec3(0.5, 0.5, 0.5)).vertices * scale)
            b.update_transform(Mat4.translation(Vec3(0.6 * scale, 0, 0)))
            assert gjk_intersect(a, b).intersecting
            b.update_transform(Mat4.translation(Vec3(1.4 * scale, 0, 0)))
            assert not gjk_intersect(a, b).intersecting

    def test_epa_ops_exceed_gjk_ops(self):
        gjk_ops = OpCounter()
        a, b = box(), at(box(), 0.5)
        result = gjk_intersect(a, b, gjk_ops)
        epa_ops = OpCounter()
        epa_penetration(a, b, result, epa_ops)
        assert epa_ops.total > gjk_ops.total
