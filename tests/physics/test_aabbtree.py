"""Dynamic AABB tree tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.aabb import AABB
from repro.geometry.vec import Vec3
from repro.physics.aabbtree import DynamicAABBTree, tree_broadphase_pairs
from repro.physics.broadphase import aabb_bruteforce_pairs
from repro.physics.counters import OpCounter


def box_at(x, y=0.0, z=0.0, half=0.5) -> AABB:
    return AABB.from_center_half_extents(Vec3(x, y, z), Vec3(half, half, half))


class TestTreeMaintenance:
    def test_insert_and_len(self):
        tree = DynamicAABBTree()
        tree.insert(1, box_at(0))
        tree.insert(2, box_at(5))
        assert len(tree) == 2

    def test_duplicate_insert_rejected(self):
        tree = DynamicAABBTree()
        tree.insert(1, box_at(0))
        with pytest.raises(ValueError):
            tree.insert(1, box_at(1))

    def test_remove(self):
        tree = DynamicAABBTree()
        tree.insert(1, box_at(0))
        tree.insert(2, box_at(5))
        tree.remove(1)
        assert len(tree) == 1
        assert tree.query(box_at(0)) == [2] or tree.query(box_at(0)) == []

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            DynamicAABBTree(margin=-0.1)

    def test_update_within_fat_box_is_cheap(self):
        tree = DynamicAABBTree(margin=0.5)
        tree.insert(1, box_at(0))
        assert tree.update(1, box_at(0.1)) is False   # still inside fat box
        assert tree.update(1, box_at(3.0)) is True    # escaped: reinserted

    def test_query_finds_overlapping(self):
        tree = DynamicAABBTree(margin=0.0)
        for i, x in enumerate((0.0, 2.0, 4.0)):
            tree.insert(i, box_at(x))
        assert sorted(tree.query(box_at(0.5))) == [0]
        assert sorted(tree.query(box_at(1.0))) == [0, 1]
        assert tree.query(box_at(100.0)) == []

    def test_query_empty_tree(self):
        assert DynamicAABBTree().query(box_at(0)) == []


class TestPairQueries:
    def test_simple_pairs(self):
        tree = DynamicAABBTree(margin=0.0)
        tree.insert(1, box_at(0.0))
        tree.insert(2, box_at(0.8))
        tree.insert(3, box_at(5.0))
        assert tree.query_pairs() == [(1, 2)]

    def test_single_leaf_no_pairs(self):
        tree = DynamicAABBTree()
        tree.insert(1, box_at(0.0))
        assert tree.query_pairs() == []

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-8, max_value=8, allow_nan=False),
                st.floats(min_value=-8, max_value=8, allow_nan=False),
                st.floats(min_value=-8, max_value=8, allow_nan=False),
            ),
            min_size=0,
            max_size=14,
        )
    )
    def test_matches_bruteforce_property(self, positions):
        boxes = [box_at(*p) for p in positions]
        ids = list(range(len(boxes)))
        brute = aabb_bruteforce_pairs(boxes, ids, OpCounter())
        tree_pairs, _ = tree_broadphase_pairs(boxes, ids, OpCounter())
        assert tree_pairs == brute.pairs

    def test_persistent_tree_across_frames(self):
        """The DBVT's point: small motion costs almost nothing."""
        rng = np.random.RandomState(3)
        positions = rng.uniform(-10, 10, size=(20, 3))
        boxes = [box_at(*p) for p in positions]
        ids = list(range(20))
        ops_first = OpCounter()
        pairs1, tree = tree_broadphase_pairs(boxes, ids, ops_first)
        # Tiny jitter: every box stays within its fat margin.
        moved = [box_at(*(p + 0.01)) for p in positions]
        ops_second = OpCounter()
        pairs2, tree = tree_broadphase_pairs(moved, ids, ops_second, tree)
        assert ops_second.total < ops_first.total
        brute = aabb_bruteforce_pairs(moved, ids, OpCounter())
        assert pairs2 == brute.pairs

    def test_object_removal_between_frames(self):
        boxes = [box_at(0.0), box_at(0.5), box_at(5.0)]
        ids = [1, 2, 3]
        pairs, tree = tree_broadphase_pairs(boxes, ids, OpCounter())
        assert pairs == [(1, 2)]
        pairs2, tree = tree_broadphase_pairs([box_at(0.0)], [1], OpCounter(), tree)
        assert pairs2 == []
        assert len(tree) == 1
