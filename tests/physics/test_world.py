"""CollisionWorld (CPU CD pipeline) tests."""

import pytest

from repro.geometry.primitives import make_box, make_concave_l, make_uv_sphere
from repro.geometry.vec import Mat4, Vec3
from repro.physics.world import CollisionWorld


def two_box_world(separation: float) -> CollisionWorld:
    world = CollisionWorld()
    world.add_object(1, make_box(Vec3(0.5, 0.5, 0.5)))
    world.add_object(2, make_box(Vec3(0.5, 0.5, 0.5)))
    world.set_transform(2, Mat4.translation(Vec3(separation, 0, 0)))
    return world


class TestManagement:
    def test_duplicate_id_rejected(self):
        world = CollisionWorld()
        world.add_object(1, make_box())
        with pytest.raises(ValueError):
            world.add_object(1, make_box())

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            CollisionWorld().add_object(-1, make_box())

    def test_remove(self):
        world = two_box_world(0.5)
        world.remove_object(2)
        assert len(world) == 1

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ValueError):
            CollisionWorld("bvh")

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            two_box_world(1.0).detect("narrow-only")


class TestDetection:
    def test_broad_positive(self):
        result = two_box_world(0.8).detect("broad")
        assert result.pairs == [(1, 2)]
        assert result.mode == "broad"

    def test_broad_negative(self):
        assert two_box_world(2.0).detect("broad").pairs == []

    def test_narrow_confirms(self):
        result = two_box_world(0.8).detect("broad+narrow")
        assert result.broad_pairs == [(1, 2)]
        assert result.narrow_pairs == [(1, 2)]
        assert result.pairs == [(1, 2)]

    def test_narrow_rejects_broad_false_positive(self):
        # Two spheres whose AABBs overlap at the corner but whose
        # volumes do not touch.
        world = CollisionWorld()
        world.add_object(1, make_uv_sphere(0.5, 12, 18))
        world.add_object(2, make_uv_sphere(0.5, 12, 18))
        d = 0.95 * 2 * 0.5 / (3 ** 0.5) * 1.4  # diagonal offset
        world.set_transform(2, Mat4.translation(Vec3(d, d, d) * (0.9 / d)))
        # Place them on the diagonal: AABB gap 0.1 per axis overlap but
        # centre distance > 1.
        world.set_transform(2, Mat4.translation(Vec3(0.75, 0.75, 0.75)))
        result = world.detect("broad+narrow")
        assert result.broad_pairs == [(1, 2)]
        assert result.narrow_pairs == []

    def test_concave_hull_false_positive(self):
        # A small box inside the L's notch: the AABB and convex hull
        # both claim collision, the real shapes do not touch — the
        # Figure 2 accuracy story (GJK-on-hull reports it).
        world = CollisionWorld()
        world.add_object(1, make_concave_l(1.0, 0.4, 0.4))
        world.add_object(2, make_box(Vec3(0.1, 0.1, 0.1)))
        world.set_transform(2, Mat4.translation(Vec3(0.7, 0.7, 0.0)))
        result = world.detect("broad+narrow")
        assert result.narrow_pairs == [(1, 2)]  # hull-level false positive

    def test_ops_accumulate(self):
        result = two_box_world(0.8).detect("broad+narrow")
        assert result.ops.total > 0

    def test_narrow_costs_more_than_broad(self):
        world = two_box_world(0.8)
        broad = world.detect("broad")
        narrow = world.detect("broad+narrow")
        assert narrow.ops.total > broad.ops.total

    @pytest.mark.parametrize("algo", ["sap", "tree"])
    def test_alternate_broad_backends(self, algo):
        world = CollisionWorld(algo)
        world.add_object(1, make_box())
        world.add_object(2, make_box())
        world.set_transform(2, Mat4.translation(Vec3(0.5, 0, 0)))
        assert world.detect("broad").pairs == [(1, 2)]

    def test_tree_backend_persistent_across_frames(self):
        world = CollisionWorld("tree")
        world.add_object(1, make_box())
        world.add_object(2, make_box())
        for dx in (3.0, 2.0, 1.0, 0.5):
            world.set_transform(2, Mat4.translation(Vec3(dx, 0, 0)))
            result = world.detect("broad")
        assert result.pairs == [(1, 2)]

    def test_three_objects_pair_list(self):
        world = two_box_world(0.8)
        world.add_object(3, make_box())
        world.set_transform(3, Mat4.translation(Vec3(10, 0, 0)))
        result = world.detect("broad")
        assert result.pairs == [(1, 2)]
