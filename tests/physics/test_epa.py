"""EPA penetration-depth tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.primitives import make_box, make_icosphere
from repro.geometry.vec import Mat4, Vec3
from repro.physics.counters import OpCounter
from repro.physics.epa import epa_penetration
from repro.physics.shapes import ConvexShape


def box_shape(half=0.5):
    return ConvexShape(make_box(Vec3(half, half, half)).vertices)


def moved(shape, offset: Vec3):
    shape.update_transform(Mat4.translation(offset))
    return shape


class TestBoxes:
    @pytest.mark.parametrize("dx", [0.3, 0.6, 0.9])
    def test_axis_depth(self, dx):
        a = box_shape()
        b = moved(box_shape(), Vec3(dx, 0, 0))
        result = epa_penetration(a, b)
        assert result.converged
        assert result.depth == pytest.approx(1.0 - dx, abs=1e-6)
        # Normal points from A toward B (+x here).
        assert result.normal[0] == pytest.approx(1.0, abs=1e-6)

    def test_y_axis_normal(self):
        a = box_shape()
        b = moved(box_shape(), Vec3(0, 0.75, 0))
        result = epa_penetration(a, b)
        assert result.depth == pytest.approx(0.25, abs=1e-6)
        assert result.normal[1] == pytest.approx(1.0, abs=1e-6)

    def test_separated_returns_none(self):
        a = box_shape()
        b = moved(box_shape(), Vec3(3, 0, 0))
        assert epa_penetration(a, b) is None

    def test_reuses_gjk_result(self):
        from repro.physics.gjk import gjk_intersect

        a = box_shape()
        b = moved(box_shape(), Vec3(0.6, 0, 0))
        gjk = gjk_intersect(a, b)
        result = epa_penetration(a, b, gjk)
        assert result.depth == pytest.approx(0.4, abs=1e-6)

    def test_ops_counted(self):
        ops = OpCounter()
        epa_penetration(box_shape(), moved(box_shape(), Vec3(0.5, 0, 0)), ops=ops)
        assert ops.flop > 0


class TestSpheres:
    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(min_value=0.2, max_value=0.9, allow_nan=False),
        st.floats(min_value=0.0, max_value=2 * np.pi, allow_nan=False),
    )
    def test_depth_matches_analytic(self, distance, phi):
        radius = 0.5
        offset = Vec3(distance * np.cos(phi), distance * np.sin(phi), 0.0)
        a = ConvexShape(make_icosphere(radius, subdivisions=3).vertices)
        b = moved(ConvexShape(make_icosphere(radius, subdivisions=3).vertices), offset)
        result = epa_penetration(a, b)
        assert result is not None
        expected = 2 * radius - distance
        # Tessellation makes the hull slightly smaller than the sphere.
        assert result.depth == pytest.approx(expected, abs=0.03)

    def test_normal_along_center_line(self):
        a = ConvexShape(make_icosphere(0.5, subdivisions=3).vertices)
        b = moved(ConvexShape(make_icosphere(0.5, subdivisions=3).vertices),
                  Vec3(0.6, 0.3, 0.0))
        result = epa_penetration(a, b)
        direction = np.array([0.6, 0.3, 0.0])
        direction /= np.linalg.norm(direction)
        assert float(result.normal @ direction) == pytest.approx(1.0, abs=0.05)


class TestSeparationProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.1, max_value=0.95, allow_nan=False),
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    )
    def test_translating_by_depth_separates(self, dx, dy, dz):
        """Moving B by normal * (depth + eps) must separate the shapes."""
        from repro.physics.gjk import gjk_intersect

        offset = Vec3(dx, dy * dx, dz * dx)
        a = box_shape()
        b = moved(box_shape(), offset)
        gjk = gjk_intersect(a, b)
        if not gjk.intersecting:
            return
        result = epa_penetration(a, b, gjk)
        if result is None or not result.converged:
            return
        push = Vec3.from_array(result.normal * (result.depth + 1e-4))
        b2 = moved(box_shape(), offset + push)
        assert not gjk_intersect(a, b2).intersecting
