"""Angular rigid-body dynamics tests."""

import math

import pytest

from repro.geometry.primitives import make_box, make_icosphere
from repro.geometry.vec import Mat4, Vec3
from repro.physics.dynamics import PhysicsWorld, RigidBody
from repro.physics.world import CollisionWorld


def ball(body_id, position, **kwargs):
    mesh = make_icosphere(0.5, subdivisions=2)
    defaults = dict(
        inverse_mass=1.0,
        inverse_inertia=RigidBody.sphere_inverse_inertia(1.0, 0.5),
    )
    defaults.update(kwargs)
    return RigidBody(body_id, mesh, position, **defaults)


class TestBasics:
    def test_sphere_inverse_inertia(self):
        # Solid sphere: I = 0.4 m r^2, so invI = invM / (0.4 r^2).
        assert RigidBody.sphere_inverse_inertia(2.0, 0.5) == pytest.approx(
            2.0 / (0.4 * 0.25)
        )
        assert RigidBody.sphere_inverse_inertia(0.0, 0.5) == 0.0
        with pytest.raises(ValueError):
            RigidBody.sphere_inverse_inertia(1.0, 0.0)

    def test_negative_inverse_inertia_rejected(self):
        with pytest.raises(ValueError):
            RigidBody(1, make_box(), Vec3.zero(), inverse_inertia=-1.0)

    def test_velocity_at_includes_spin(self):
        body = ball(1, Vec3.zero(), angular_velocity=Vec3(0, 0, 1.0))
        v = body.velocity_at(Vec3(1.0, 0.0, 0.0))
        assert v.is_close(Vec3(0.0, 1.0, 0.0))

    def test_orientation_integrates(self):
        world = PhysicsWorld(gravity=Vec3.zero())
        body = world.add_body(
            ball(1, Vec3.zero(), angular_velocity=Vec3(0, 0, math.pi))
        )
        world.integrate(0.5)  # quarter turn about z
        rotated = body.orientation.transform_point(Vec3(1, 0, 0))
        assert rotated.is_close(Vec3(0, 1, 0), tol=1e-9)

    def test_model_matrix_includes_orientation(self):
        body = ball(1, Vec3(2, 0, 0))
        body.orientation = Mat4.rotation_z(math.pi / 2)
        p = body.model_matrix().transform_point(Vec3(1, 0, 0))
        assert p.is_close(Vec3(2, 1, 0), tol=1e-12)

    def test_zero_inertia_never_spins(self):
        world = PhysicsWorld(gravity=Vec3.zero())
        a = world.add_body(RigidBody(1, make_icosphere(0.5, 2), Vec3(-1, 0.3, 0),
                                     velocity=Vec3(3, 0, 0)))
        b = world.add_body(RigidBody(2, make_icosphere(0.5, 2), Vec3(1, -0.3, 0)))
        cw = CollisionWorld()
        for bid in (1, 2):
            cw.add_object(bid, world.body(bid).mesh)
        for _ in range(60):
            for bid in (1, 2):
                cw.set_transform(bid, world.body(bid).model_matrix())
            world.step(1 / 60, cw.detect("broad+narrow").pairs)
        assert a.angular_velocity.is_close(Vec3.zero())
        assert b.angular_velocity.is_close(Vec3.zero())


class TestOffCentreImpact:
    def run_glancing(self):
        """A moving ball grazes a stationary one above centre."""
        world = PhysicsWorld(gravity=Vec3.zero())
        mover = world.add_body(
            ball(1, Vec3(-1.5, 0.55, 0.0), velocity=Vec3(4.0, 0.0, 0.0))
        )
        target = world.add_body(ball(2, Vec3(0.0, 0.0, 0.0)))
        cw = CollisionWorld()
        for bid in (1, 2):
            cw.add_object(bid, world.body(bid).mesh)
        for _ in range(90):
            for bid in (1, 2):
                cw.set_transform(bid, world.body(bid).model_matrix())
            world.step(1 / 120, cw.detect("broad+narrow").pairs)
        return mover, target

    def test_glancing_impact_induces_spin(self):
        mover, target = self.run_glancing()
        assert target.angular_velocity.length() > 1e-6 or (
            mover.angular_velocity.length() > 1e-6
        )

    def test_target_gains_linear_momentum(self):
        _, target = self.run_glancing()
        assert target.velocity.length() > 0.1

    def test_spin_axis_perpendicular_to_impact_plane(self):
        mover, target = self.run_glancing()
        spin = target.angular_velocity
        if spin.length() > 1e-9:
            axis = spin / spin.length()
            # Impact geometry lies in the xy plane: spin about +-z.
            assert abs(axis.z) > 0.9


class TestEnergyBounds:
    def test_restitution_one_conserves_speed_head_on(self):
        world = PhysicsWorld(gravity=Vec3.zero())
        a = world.add_body(ball(1, Vec3(-1.0, 0, 0), velocity=Vec3(2, 0, 0),
                                restitution=1.0))
        b = world.add_body(ball(2, Vec3(1.0, 0, 0), velocity=Vec3(-2, 0, 0),
                                restitution=1.0))
        cw = CollisionWorld()
        for bid in (1, 2):
            cw.add_object(bid, world.body(bid).mesh)
        for _ in range(60):
            for bid in (1, 2):
                cw.set_transform(bid, world.body(bid).model_matrix())
            world.step(1 / 60, cw.detect("broad+narrow").pairs)
        total = (
            a.velocity.length_squared() + b.velocity.length_squared()
            + a.angular_velocity.length_squared() / a.inverse_inertia
            + b.angular_velocity.length_squared() / b.inverse_inertia
        )
        # Head-on, so nearly all energy stays linear; small tessellation
        # leakage allowed.
        assert total == pytest.approx(8.0, rel=0.1)
