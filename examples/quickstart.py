"""Quickstart: render-based collision detection in a dozen lines.

Builds two meshes, asks the RBCD system whether they collide, and
inspects the contact points the hardware model reports.

Run:  python examples/quickstart.py
"""

from repro import RBCDSystem, detect_collisions
from repro.geometry import Mat4, Vec3, make_box, make_uv_sphere
from repro.scenes.camera import Camera


def main() -> None:
    box = make_box(Vec3(0.5, 0.5, 0.5))
    ball = make_uv_sphere(0.5, rings=12, segments=18)

    # --- one-shot API ----------------------------------------------------
    objects = [
        (1, box, Mat4.translation(Vec3(-0.3, 0.0, 0.0))),
        (2, ball, Mat4.translation(Vec3(0.45, 0.0, 0.0))),
        (3, box, Mat4.translation(Vec3(3.0, 0.0, 0.0))),  # far away
    ]
    pairs = detect_collisions(objects)
    print(f"colliding pairs: {sorted(pairs)}")
    assert pairs == {(1, 2)}

    # --- reusable system: full report ------------------------------------
    system = RBCDSystem(resolution=(320, 200))
    camera = Camera(eye=Vec3(0.0, 0.5, 5.0), target=Vec3(0.0, 0.0, 0.0))
    result = system.detect(objects, camera)

    print(f"collides(1, 2): {result.collides(1, 2)}")
    contacts = result.contacts(1, 2)
    print(f"contact points reported by the RBCD unit: {len(contacts)}")
    x, y = contacts[0].x, contacts[0].y
    print(f"first contact at pixel ({x}, {y}), "
          f"depth interval [{contacts[0].z_front:.4f}, {contacts[0].z_back:.4f}]")

    stats = result.stats
    print(
        f"GPU work: {stats.fragments_produced:,} fragments rasterized, "
        f"{stats.zeb_insertions:,} ZEB insertions, "
        f"{stats.collision_pairs_emitted:,} pair records emitted"
    )
    print(f"ZEB overflow rate: {stats.zeb_overflow_rate:.2%}")


if __name__ == "__main__":
    main()
