"""Figure 2: collision-shape accuracy of AABB, hull-GJK and RBCD.

A small probe box is swept across a grid around a concave L-shaped
object.  At each position, three detectors answer "colliding?":

* the broad-phase AABB test (the L's box covers the whole notch),
* GJK on the L's convex hull (the hull fills the notch too),
* RBCD (the discretized true shape).

The printout is a map per detector: ``#`` = collision reported, ``.`` =
clear.  RBCD's map is the only one whose notch stays clear.

Run:  python examples/accuracy_comparison.py
"""

import numpy as np

from repro.core import RBCDSystem
from repro.geometry import Mat4, Vec3, make_box, make_concave_l
from repro.physics.counters import OpCounter
from repro.physics.gjk import gjk_intersect
from repro.physics.shapes import ConvexShape
from repro.scenes.camera import Camera

GRID = 13
SPAN = (-0.3, 1.3)


def main() -> None:
    l_shape = make_concave_l(1.0, 0.4, 0.4)
    probe = make_box(Vec3(0.08, 0.08, 0.08))

    l_aabb = l_shape.aabb()
    l_hull = ConvexShape(l_shape.vertices)
    system = RBCDSystem(resolution=(256, 256))
    camera = Camera(eye=Vec3(0.5, 0.5, 5.0), target=Vec3(0.5, 0.5, 0.0))

    coords = np.linspace(SPAN[0], SPAN[1], GRID)
    maps = {"AABB broad phase": [], "GJK on convex hull": [], "RBCD": []}

    for y in coords[::-1]:  # print top row first
        rows = {name: [] for name in maps}
        for x in coords:
            model = Mat4.translation(Vec3(float(x), float(y), 0.0))
            probe_box = probe.aabb().transformed(model)
            rows["AABB broad phase"].append(l_aabb.overlaps(probe_box))

            shape = ConvexShape(probe.vertices)
            shape.update_transform(model)
            rows["GJK on convex hull"].append(
                gjk_intersect(l_hull, shape, OpCounter()).intersecting
            )

            result = system.detect(
                [(1, l_shape, Mat4.identity()), (2, probe, model)], camera
            )
            rows["RBCD"].append((1, 2) in result.pairs)
        for name in maps:
            maps[name].append(rows[name])

    for name, grid in maps.items():
        hits = sum(sum(row) for row in grid)
        print(f"\n{name}  ({hits}/{GRID * GRID} positions report collision)")
        for row in grid:
            print("   " + "".join("#" if hit else "." for hit in row))

    aabb_hits = sum(sum(r) for r in maps["AABB broad phase"])
    hull_hits = sum(sum(r) for r in maps["GJK on convex hull"])
    rbcd_hits = sum(sum(r) for r in maps["RBCD"])
    print(
        f"\nfalse-collision ordering (Figure 2): "
        f"AABB {aabb_hits} >= hull {hull_hits} > RBCD {rbcd_hits}"
    )


if __name__ == "__main__":
    main()
