"""Live telemetry in one page: monitor a frame stream, scrape yourself.

Attaches a LiveMonitor to an RBCD system, streams a handful of `cap`
frames while a background MetricsServer serves /metrics, /healthz and
/snapshot.json, then fetches all three endpoints over real HTTP and
prints a tiny text dashboard.  A second pass with a deliberately tight
energy budget shows a watchdog tripping and /healthz going 503.

Run:  python examples/live_dashboard.py
"""

import json
from urllib.error import HTTPError
from urllib.request import urlopen

from repro.core import RBCDSystem
from repro.gpu.config import GPUConfig
from repro.observability import (
    LiveMonitor,
    MetricsServer,
    default_rules,
    validate_openmetrics,
)
from repro.scenes.benchmarks import make_cap

CFG = GPUConfig().with_screen(160, 96)
FRAMES = 5


def stream(monitor: LiveMonitor) -> None:
    workload = make_cap(detail=1)
    with RBCDSystem(config=CFG, monitor=monitor) as system:
        for t in workload.times(FRAMES):
            system.detect_frame(workload.scene.frame_at(float(t), CFG))


def fetch(url: str) -> tuple[int, str]:
    try:
        with urlopen(url, timeout=10) as response:
            return response.status, response.read().decode("utf-8")
    except HTTPError as err:  # /healthz answers 503 while failing
        return err.code, err.read().decode("utf-8")


def main() -> None:
    monitor = LiveMonitor(window=32)
    with MetricsServer(monitor) as server:
        stream(monitor)

        status, text = fetch(server.url + "/metrics")
        samples = validate_openmetrics(text)
        print(f"GET /metrics -> {status}: {samples} valid samples")

        status, body = fetch(server.url + "/healthz")
        print(f"GET /healthz -> {status}: {json.loads(body)['status']}")

        snapshot = json.loads(fetch(server.url + "/snapshot.json")[1])
        window = snapshot["window"]
        print(f"\n-- dashboard after {snapshot['frames']} frames --")
        print(f"RBCD activity  {window['window.rbcd.activity_ratio']:8.4%}"
              "   (paper envelope: < 1%)")
        print(f"ZEB overflow   {window['window.zeb.overflow_rate']:8.4%}")
        print(f"joules/frame   {window['window.energy.joules_per_frame']:.6f}")
        print(f"sim p95        {window['quantile.frame.sim_ms.p95']:.3f} ms")
        print(f"pairs/frame    {window['window.pairs.per_frame']:.1f}")

    # Same stream under an absurdly tight energy budget: the watchdog
    # trips on frame 0 and the health endpoint flips to 503.
    strict = LiveMonitor(
        window=32, rules=default_rules(max_joules_per_frame=1e-9)
    )
    with MetricsServer(strict) as server:
        stream(strict)
        status, body = fetch(server.url + "/healthz")
        print(f"\n-- tight budget -- GET /healthz -> {status}: "
              f"{json.loads(body)['status']}")
        for alert in strict.alerts:
            print(f"  {alert.message}")


if __name__ == "__main__":
    main()
