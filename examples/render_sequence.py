"""Render a benchmark sequence to PPM frames with collision overlays.

Renders a short run of the `temple` workload, writes each framebuffer
as a PPM image (viewable anywhere, `ffmpeg -i frame_%02d.ppm out.mp4`
makes a video), marks the RBCD unit's contact pixels in red, and prints
an ASCII preview of the final frame.

Run:  python examples/render_sequence.py [output_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.gpu.config import GPUConfig
from repro.gpu.image import ascii_preview, save_ppm
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import make_temple

CFG = GPUConfig().with_screen(320, 192)
FRAMES = 6


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="rbcd_frames_")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    workload = make_temple(detail=1)
    gpu = GPU(CFG, rbcd_enabled=True)

    last = None
    for i, t in enumerate(workload.times(FRAMES)):
        result = gpu.render_frame(workload.scene.frame_at(float(t), CFG))
        image = result.color.copy()
        # Overlay every reported contact pixel in red.
        contact_count = 0
        for points in result.collisions.contacts.values():
            for p in points:
                image[p.y, p.x] = (1.0, 0.1, 0.1)
                contact_count += 1
        path = save_ppm(image, out_dir / f"frame_{i:02d}.ppm")
        names = workload.scene.name_of
        pairs = ", ".join(
            f"{names(a)}~{names(b)}" for a, b in result.collisions.as_sorted_pairs()
        )
        print(f"{path.name}: {contact_count:4d} contact pixels  "
              f"[{pairs or 'no collisions'}]")
        last = image

    print(f"\nframes written to {out_dir}\n")
    print(ascii_preview(last, width=72, height=22))


if __name__ == "__main__":
    main()
