"""Trace-driven simulation, the paper's Teapot workflow.

Captures a short run of the `cap` benchmark as a command trace (the
equivalent of intercepting the GL stream), saves it to disk, then
replays the same trace under different RBCD configurations — ZEB list
lengths 2, 8 and 16 — to measure overflow without touching the scene
code again.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.gpu.trace import load_trace, replay_trace, save_trace
from repro.scenes.benchmarks import make_temple

CFG = GPUConfig().with_screen(320, 192)


def main() -> None:
    workload = make_temple(detail=1)
    frames = [
        workload.scene.frame_at(float(t), CFG) for t in workload.times(4)
    ]

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "temple.trace.json"
        save_trace(frames, path)
        size_kb = path.stat().st_size / 1024
        print(f"captured {len(frames)} frames -> {path.name} ({size_kb:.0f} KB)")

        print(f"\n{'M':>4} {'overflow':>10} {'pairs found':>12}")
        for m in (2, 8, 16):
            gpu = GPU(
                CFG.with_rbcd(list_length=m, ff_stack_entries=max(m, 8)),
                rbcd_enabled=True,
            )
            replay = replay_trace(load_trace(path), gpu)
            stats = replay.total_stats
            pairs = set().union(*replay.pairs_per_frame)
            print(f"{m:>4} {stats.zeb_overflow_rate:>9.2%} {len(pairs):>12}")

    print(
        "\nShorter lists overflow more and can miss deep-stacked pairs;"
        "\nthe same trace, re-simulated, quantifies the trade (Table 3)."
    )


if __name__ == "__main__":
    main()
