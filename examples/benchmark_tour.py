"""Tour of the four Table-1 benchmark workloads.

Renders a mid-run frame of each synthetic benchmark through the full
GPU model (with the RBCD unit), prints the headline statistics, the
collisions found, and an ASCII thumbnail of the framebuffer.

Run:  python examples/benchmark_tour.py
"""

import numpy as np

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import all_workloads

CFG = GPUConfig().with_screen(320, 192)
_SHADES = " .:-=+*#%@"


def thumbnail(color: np.ndarray, width: int = 64, height: int = 20) -> str:
    luma = color @ np.array([0.299, 0.587, 0.114])
    ys = np.linspace(0, luma.shape[0] - 1, height).astype(int)
    xs = np.linspace(0, luma.shape[1] - 1, width).astype(int)
    small = luma[np.ix_(ys, xs)]
    idx = np.clip((small * (len(_SHADES) - 1)).astype(int), 0, len(_SHADES) - 1)
    return "\n".join("".join(_SHADES[v] for v in row) for row in idx)


def main() -> None:
    for workload in all_workloads(detail=1):
        gpu = GPU(CFG, rbcd_enabled=True)
        frame = workload.scene.frame_at(workload.duration_s / 2.0, CFG)
        result = gpu.render_frame(frame)
        stats = result.stats

        print("=" * 70)
        print(f"{workload.name} ({workload.alias}) — {workload.description}")
        print("=" * 70)
        print(thumbnail(result.color))
        print(
            f"triangles: {stats.triangles_assembled:,}   "
            f"fragments: {stats.fragments_produced:,}   "
            f"collisionable fragments: {stats.rbcd_fragments_in:,}"
        )
        print(
            f"ZEB insertions: {stats.zeb_insertions:,}   "
            f"overflow rate: {stats.zeb_overflow_rate:.2%}   "
            f"GPU cycles: {stats.gpu_cycles:,.0f}"
        )
        names = workload.scene.name_of
        pairs = [
            f"{names(a)}~{names(b)}" for a, b in result.collisions.as_sorted_pairs()
        ]
        print(f"collisions this frame: {', '.join(pairs) if pairs else '(none)'}")
        print()


if __name__ == "__main__":
    main()
