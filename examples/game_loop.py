"""The Figure 7 game loop, with RBCD doing the collision detection.

A stack of balls drops onto a floor.  Every frame:

1. the scene is rendered through the GPU model — the RBCD unit detects
   collisions as a by-product of rendering (Figure 7b);
2. the CPU runs only Collision Response (impulses) on the reported
   pairs, then integrates the rigid bodies;
3. for comparison, the same frame's CD is also priced on the software
   baseline (broad+GJK), showing the work RBCD removed from the CPU.

Run:  python examples/game_loop.py [--workers N]

``--workers N`` fans the per-tile RBCD simulation out to N processes
(the parallel tile engine); the detected pairs and cycle counts are
bit-identical to the serial run — only wall-clock time changes.
"""

import argparse

from repro.core import RBCDSystem
from repro.cpu.model import CPUModel
from repro.geometry import Mat4, Vec3, make_box, make_icosphere
from repro.physics.dynamics import PhysicsWorld, RigidBody
from repro.physics.world import CollisionWorld
from repro.scenes.camera import Camera

FRAMES = 90
DT = 1.0 / 60.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=1)
    args = parser.parse_args()

    physics = PhysicsWorld()
    physics.add_body(
        RigidBody(0, make_box(Vec3(4.0, 0.4, 4.0)), Vec3(0, 0, 0), inverse_mass=0.0)
    )
    ball = make_icosphere(0.45, subdivisions=2)
    drops = [Vec3(-0.3, 2.5, 0.0), Vec3(0.35, 4.0, 0.1), Vec3(0.0, 5.6, -0.1)]
    for i, start in enumerate(drops, start=1):
        physics.add_body(RigidBody(i, ball, start, restitution=0.4))

    system = RBCDSystem(resolution=(320, 200), workers=args.workers)
    camera = Camera(eye=Vec3(0.0, 3.0, 9.0), target=Vec3(0.0, 1.5, 0.0))

    # Software CD world over the same meshes, for the cost comparison.
    software = CollisionWorld()
    for body in physics.bodies():
        software.add_object(body.body_id, body.mesh)
    cpu = CPUModel()

    rbcd_gpu_cycles = 0.0
    cpu_cd_seconds = 0.0
    contacts_resolved = 0

    for frame in range(FRAMES):
        objects = [
            (body.body_id, body.mesh, body.model_matrix())
            for body in physics.bodies()
        ]
        # CD on the GPU (the RBCD path of Figure 7b).
        result = system.detect(objects, camera)
        pairs = sorted(result.pairs)
        rbcd_gpu_cycles += result.stats.gpu_cycles

        # What the conventional loop (Figure 7a) would have paid.
        for body in physics.bodies():
            software.set_transform(body.body_id, body.model_matrix())
        cpu_cd_seconds += cpu.price(software.detect("broad+narrow").ops).seconds

        # Collision Response + time step on the CPU.
        contacts_resolved += physics.step(DT, pairs)

        if frame % 15 == 0:
            heights = ", ".join(
                f"{physics.body(i).position.y:5.2f}" for i in (1, 2, 3)
            )
            print(f"frame {frame:3d}  ball heights: [{heights}]  pairs: {pairs}")

    system.close()
    print()
    print(f"contacts resolved over the run : {contacts_resolved}")
    for i in (1, 2, 3):
        y = physics.body(i).position.y
        print(f"ball {i} settled at y = {y:.2f}")
    print()
    print(f"software CD would have cost the CPU : {cpu_cd_seconds * 1e3:8.2f} ms")
    print("with RBCD, that CPU work is gone — CD rides along with rendering.")


if __name__ == "__main__":
    main()
