"""Divergence forensics: why did RBCD miss (or invent) a pair?

Runs render-based collision detection on the `cap` benchmark with a
deliberately starved ZEB (M=2 elements per pixel, vs the paper's
Table-2 default of 8) next to the exact triangle oracle, then lets the
forensics engine explain every disagreement by replaying the recorded
evidence — the Table-3 overflow effect, but per pair and with the
witness pixels attached.

Run:  python examples/collision_forensics.py
"""

from repro.experiments.explain import build_config
from repro.observability.forensics import run_forensics
from repro.scenes.benchmarks import make_cap

STARVED_M = 2
FRAMES = 4


def main() -> None:
    workload = make_cap(detail=1)
    config = build_config(320, 192, zeb_elements=STARVED_M)
    report = run_forensics(workload, config, frames=FRAMES)

    print(
        f"scene={report.alias} frames={report.frames} "
        f"M={report.zeb_elements} (starved; Table 2 default is 8)"
    )
    print(
        f"agreements={report.agreements} "
        f"evidence records={report.recorder.pairs_recorded} "
        f"case histogram={report.recorder.case_histogram()}"
    )

    if not report.divergences:
        print("no divergences — try an even smaller M")
        return

    print(f"\n{len(report.divergences)} divergence(s), every one explained:")
    for divergence in report.divergences:
        print(f"  {divergence.describe()}")
        for x, y in divergence.witness_pixels[:3]:
            print(f"      witness pixel ({x}, {y})")

    assert not report.unclassified, "forensics left a divergence unexplained"
    print(
        "\nEach miss above names its mechanism (ZEB overflow, FF-Stack"
        "\ndepth, z precision, ...) — aggregate accuracy numbers like"
        "\nFig. 2 fall out of summing these per-pair verdicts."
    )


if __name__ == "__main__":
    main()
