"""A microscope on one pixel of the ZEB.

Renders two interpenetrating objects, picks a contested pixel, and
prints what the RBCD hardware sees there: the depth-sorted ZEB list
(Figure 4's output) and the FF-Stack walk of the Z-Overlap Test
(Figure 5), step by step.

Run:  python examples/zeb_microscope.py
"""

import numpy as np

from repro.geometry import Mat4, Vec3, make_box, make_uv_sphere
from repro.gpu.commands import DrawCommand, Frame
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.rbcd.element import quantize_depth
from repro.rbcd.zeb import build_zeb_tile
from repro.scenes.camera import Camera

CFG = GPUConfig().with_screen(160, 96)
NAMES = {1: "A (box)", 2: "B (sphere)"}


def main() -> None:
    camera = Camera(eye=Vec3(0, 0, 5), target=Vec3.zero())
    frame = Frame(
        draws=(
            DrawCommand(make_box(Vec3(0.5, 0.5, 0.5)),
                        Mat4.translation(Vec3(-0.25, 0, 0)), object_id=1),
            DrawCommand(make_uv_sphere(0.5, 12, 18),
                        Mat4.translation(Vec3(0.35, 0, 0)), object_id=2),
        ),
        view=camera.view(),
        projection=camera.projection(CFG.screen_width / CFG.screen_height),
    )
    result = GPU(CFG, rbcd_enabled=True).render_frame(frame, keep_fragments=True)
    frags = result.fragments

    # Find the most contested pixel (most collisionable fragments).
    coll = np.flatnonzero(frags.object_id >= 0)
    keys = frags.y[coll].astype(np.int64) * CFG.screen_width + frags.x[coll]
    best_key = np.bincount(keys).argmax()
    px, py = int(best_key % CFG.screen_width), int(best_key // CFG.screen_width)
    at_pixel = coll[keys == best_key]
    print(f"pixel ({px}, {py}) receives {at_pixel.size} collisionable fragments\n")

    # Re-run the sorted insertion for just this pixel.
    ts = CFG.tile_size
    local = (py % ts) * ts + (px % ts)
    tile = build_zeb_tile(
        np.full(at_pixel.size, local),
        frags.z[at_pixel],
        frags.object_id[at_pixel],
        frags.front[at_pixel],
        CFG.rbcd,
    )
    row = int(np.flatnonzero(tile.pixel_index == local)[0])
    n = int(tile.counts[row])
    print("ZEB list after sorted insertion (front to back):")
    for k in range(n):
        face = "[" if tile.is_front[row, k] else "]"
        oid = int(tile.object_ids[row, k])
        print(f"  {k}: {face}{oid}  z_code={int(tile.z_codes[row, k]):6d}  "
              f"({NAMES.get(oid, oid)} {'front' if tile.is_front[row, k] else 'back'})")

    # Walk the FF-Stack by hand, narrating each step.
    print("\nZ-Overlap Test walk:")
    stack: list[list] = []  # [id, matched]
    for k in range(n):
        oid = int(tile.object_ids[row, k])
        front = bool(tile.is_front[row, k])
        if front:
            stack.append([oid, False])
            print(f"  [{oid}: push            stack = {format_stack(stack)}")
            continue
        match = next((i for i, (sid, m) in enumerate(stack)
                      if sid == oid and not m), None)
        if match is None:
            print(f"  ]{oid}: no unmatched front — ignored")
            continue
        hits = [sid for sid, _ in stack[match + 1:] if sid != oid]
        stack[match][1] = True
        note = f" -> notify {[f'<{h},{oid}>' for h in hits]}" if hits else ""
        print(f"  ]{oid}: match at {match}  stack = {format_stack(stack)}{note}")

    print(f"\npairs reported for the frame: {result.collisions.as_sorted_pairs()}")


def format_stack(stack) -> str:
    return "[" + ", ".join(f"[{sid}{'*' if m else ''}" for sid, m in stack) + "]"


if __name__ == "__main__":
    main()
