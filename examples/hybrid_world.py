"""A game world larger than the screen: hybrid collision detection.

Section 3.6 of the paper: RBCD covers the rendered view; objects
outside the frustum fall back to conventional software CD.  This
example builds a ring of colliding object pairs around the player —
only some pairs are on screen — and shows the hybrid system resolving
every one, reporting which path found what.

Run:  python examples/hybrid_world.py
"""

import math

from repro.geometry import Mat4, Vec3, make_box
from repro.hybrid import HybridCDSystem
from repro.scenes.camera import Camera


def main() -> None:
    camera = Camera(eye=Vec3(0.0, 1.0, 6.0), target=Vec3(0.0, 0.0, -4.0),
                    fov_y_deg=55.0, far=60.0)
    box = make_box(Vec3(0.5, 0.5, 0.5))

    # Eight colliding pairs on a circle of radius 12 around the player:
    # the camera looks down -z, so only the pairs ahead are on screen.
    objects = []
    object_id = 0
    pair_names = {}
    for k in range(8):
        angle = 2.0 * math.pi * k / 8
        cx, cz = 12.0 * math.sin(angle), -12.0 * math.cos(angle)
        a, b = object_id, object_id + 1
        objects.append((a, box, Mat4.translation(Vec3(cx - 0.3, 0.0, cz))))
        objects.append((b, box, Mat4.translation(Vec3(cx + 0.3, 0.0, cz))))
        pair_names[(a, b)] = f"pair {k} at {math.degrees(angle):5.0f} deg"
        object_id += 2

    system = HybridCDSystem(resolution=(320, 200))
    result = system.detect(objects, camera)

    print(f"objects in the world     : {len(objects)}")
    print(f"outside the view frustum : {len(result.offscreen_ids)}")
    print(f"pairs found (total)      : {len(result.pairs)} of 8 real contacts\n")

    for pair, name in sorted(pair_names.items()):
        if pair in result.rbcd_pairs:
            path = "RBCD (rendered)"
        elif pair in result.software_pairs:
            path = "software GJK (off-screen)"
        else:
            path = "MISSED"
        print(f"  {name}: {path}")

    assert result.pairs == set(pair_names), "every contact must be found"
    print("\nevery contact found; the two paths partition the world.")


if __name__ == "__main__":
    main()
