"""The CD cost hierarchy the paper's Section 2 describes.

"The cost of CD for a given pair of objects is typically O(n*n)" — the
exact triangle-level narrow phase is the unsimplified baseline; the
AABB broad phase and the GJK narrow phase are the standard mitigations;
RBCD removes the CPU cost altogether.  This bench prices all three
software pipelines on the same frames and checks the hierarchy.
"""

import pytest

from repro.cpu.model import CPUModel
from repro.physics.counters import OpCounter
from repro.scenes.benchmarks import make_cap


def _render_mesh_world(workload):
    """A world over the decimated *render* meshes: all three pipelines
    must see the same geometry for the hierarchy to be apples-to-apples
    (the exact mode on full CD meshes would take minutes — which is
    itself the point, but not one worth waiting for)."""
    from repro.physics.world import CollisionWorld

    world = CollisionWorld()
    for obj in workload.scene.objects:
        if obj.collisionable:
            world.add_object(workload.scene.object_id(obj.name), obj.mesh)
    return world


def run_hierarchy():
    workload = make_cap(detail=1)
    model = CPUModel()
    costs = {}
    for mode in ("broad", "broad+narrow", "broad+exact"):
        world = _render_mesh_world(workload)
        total = OpCounter()
        # times(4) includes the mid-run moments where the fighters and
        # props actually overlap, so the narrow phases do real work.
        for t in workload.times(4):
            workload.scene.sync_world(world, float(t))
            total += world.detect(mode).ops
        costs[mode] = model.price(total)
    return costs


def test_cost_hierarchy(benchmark):
    costs = benchmark.pedantic(run_hierarchy, rounds=1, iterations=1)
    broad = costs["broad"].seconds
    gjk = costs["broad+narrow"].seconds
    exact = costs["broad+exact"].seconds
    print(
        f"\n  CPU CD cost per 2 frames (cap, same render-LOD meshes):"
        f"\n    broad (AABB)        : {broad * 1e3:9.3f} ms"
        f"\n    broad+narrow (GJK)  : {gjk * 1e3:9.3f} ms"
        f"\n    broad+exact (tri-tri): {exact * 1e3:9.3f} ms"
    )
    # GJK costs more than the broad phase alone.
    assert gjk > broad
    # The exact phase costs several times GJK even on these few-hundred-
    # triangle LODs; its O(n^2) growth makes the gap explode with mesh
    # detail (GJK's support scan is O(n), the tri-tri pair set O(n^2)).
    assert exact > 2 * gjk


def test_exact_and_gjk_agree_on_cap_frames(benchmark):
    """On this workload's (convex) collisionables the two narrow phases
    agree about who collides."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    workload = make_cap(detail=1)
    from repro.physics.world import CollisionWorld

    render_world = CollisionWorld()
    for obj in workload.scene.objects:
        if obj.collisionable:
            render_world.add_object(workload.scene.object_id(obj.name), obj.mesh)
    for t in workload.times(3):
        workload.scene.sync_world(render_world, float(t))
        gjk_pairs = set(render_world.detect("broad+narrow").pairs)
        exact_pairs = set(render_world.detect("broad+exact").pairs)
        # Exact surface test misses full containment and grazing-only
        # contacts; on this scene the sets should simply match.
        assert exact_pairs <= gjk_pairs
