"""Ablation: ZEB count beyond two.

Section 5.2: "two ZEBs are enough to avoid practically all stalls, and
... including more ZEBs does not improve time and slightly increases
the energy consumption" (extra SRAM leakage with nothing left to hide).
"""

import pytest

from repro.experiments.runner import run_all_benchmarks
from benchmarks.conftest import DETAIL, FRAMES, HEIGHT, WIDTH


@pytest.fixture(scope="session")
def zeb_sweep_runs():
    return run_all_benchmarks(
        width=WIDTH, height=HEIGHT, frames=FRAMES, detail=DETAIL,
        zeb_counts=(1, 2, 3, 4),
    )


def test_more_zebs_monotone_time(zeb_sweep_runs, benchmark):
    runs = benchmark.pedantic(lambda: zeb_sweep_runs, rounds=1, iterations=1)
    print()
    for run in runs:
        times = {k: run.rbcd[k].seconds / run.baseline.seconds for k in (1, 2, 3, 4)}
        print(f"  {run.alias:7s} normalized time by ZEB count: "
              + ", ".join(f"{k}: {v:.4f}" for k, v in times.items()))
        assert times[1] >= times[2] >= times[3] >= times[4]


def test_third_zeb_buys_almost_nothing(zeb_sweep_runs, benchmark):
    """The 1->2 step removes most stalls; 2->3 is marginal."""
    benchmark.pedantic(lambda: zeb_sweep_runs, rounds=1, iterations=1)
    for run in zeb_sweep_runs:
        gain_12 = run.rbcd[1].seconds - run.rbcd[2].seconds
        gain_23 = run.rbcd[2].seconds - run.rbcd[3].seconds
        assert gain_23 <= gain_12 + 1e-12, run.alias
        # At least 60 % of the total achievable gain comes from the
        # second ZEB.
        total_gain = run.rbcd[1].seconds - run.rbcd[4].seconds
        if total_gain > 0:
            assert gain_12 / total_gain > 0.6, run.alias


def test_extra_zebs_increase_energy_when_time_flat(zeb_sweep_runs, benchmark):
    """Each additional ZEB leaks; once stalls are gone the energy can
    only go up."""
    benchmark.pedantic(lambda: zeb_sweep_runs, rounds=1, iterations=1)
    for run in zeb_sweep_runs:
        t3, t4 = run.rbcd[3].seconds, run.rbcd[4].seconds
        if t3 == t4:  # no time left to win
            assert run.rbcd[4].energy_j >= run.rbcd[3].energy_j, run.alias
