"""Section 3.6: extra raster-only time steps.

"Should the application run additional time steps, it can be done by
rasterizing (not fragment processing) extra commands just containing
the collisionable objects to be tested."  A raster-only CD pass must
cost a small fraction of a full rendered frame and still detect the
same collisions.
"""

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import make_cap
from benchmarks.conftest import DETAIL

CFG = GPUConfig().with_screen(400, 240)


def run_pair():
    workload = make_cap(detail=DETAIL)
    gpu = GPU(CFG, rbcd_enabled=True)
    t = workload.duration_s / 2.0
    full = gpu.render_frame(workload.scene.frame_at(t, CFG))
    raster_only = gpu.render_frame(
        workload.scene.frame_at(t, CFG, raster_only=True)
    )
    return full, raster_only


def test_raster_only_timestep(benchmark):
    full, raster_only = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    ratio = raster_only.stats.gpu_cycles / full.stats.gpu_cycles
    print(f"\n  raster-only CD pass costs {ratio:.2%} of a full frame")
    # Same collisions, no fragment shading, far cheaper.
    assert raster_only.collisions.pairs == full.collisions.pairs
    assert raster_only.stats.fragments_shaded == 0
    assert ratio < 0.6


def test_raster_only_preserves_rbcd_activity(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    full, raster_only = run_pair()
    assert raster_only.stats.zeb_insertions == full.stats.zeb_insertions
    assert (
        raster_only.stats.collision_pairs_emitted
        == full.stats.collision_pairs_emitted
    )
