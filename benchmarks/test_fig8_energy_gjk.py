"""Figure 8d: energy reduction of RBCD versus the GJK-CD baseline.

Paper: geomean ~1750x / ~2875x (1 / 2 ZEBs).
"""

from repro.experiments import figures
from benchmarks.conftest import show


def test_fig8d_energy_reduction_vs_gjk(paper_runs, benchmark):
    fig = benchmark.pedantic(
        figures.fig8d_energy_gjk, args=(paper_runs,), rounds=1, iterations=1
    )
    show(fig)
    fig8b = figures.fig8b_energy_broad(paper_runs)
    for label in ("1 ZEB", "2 ZEB"):
        for run in paper_runs:
            assert fig.value(label, run.alias) > fig8b.value(label, run.alias)
    assert fig.value("2 ZEB", "geo.mean") > 100
