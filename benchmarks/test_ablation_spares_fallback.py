"""Ablations of the Section 5.3 overflow mitigations.

The paper sketches two escapes for overflow-heavy content: a CPU
fallback (punt the frame to software CD) and "a ZEB with several spare
entries that could be dynamically allocated as extra space to create
longer lists".  Both are implemented; these benches quantify them on
the overflow-heaviest benchmark (temple) at M=4.
"""

import pytest

from repro.experiments.runner import run_overflow_sweeps
from benchmarks.conftest import DETAIL, FRAMES, HEIGHT, WIDTH


@pytest.fixture(scope="session")
def temple_m4_sweeps():
    plain = run_overflow_sweeps(
        width=WIDTH, height=HEIGHT, frames=FRAMES, detail=DETAIL,
        m_values=(4,), spare_entries=0,
    )
    spared = run_overflow_sweeps(
        width=WIDTH, height=HEIGHT, frames=FRAMES, detail=DETAIL,
        m_values=(4,), spare_entries=128,
    )
    return plain, spared


def test_spare_entries_cut_overflow(temple_m4_sweeps, benchmark):
    plain, spared = benchmark.pedantic(
        lambda: temple_m4_sweeps, rounds=1, iterations=1
    )
    print()
    for before, after in zip(plain, spared):
        print(
            f"  {before.alias:7s} M=4 overflow: {before.overflow_rate[4]*100:6.2f}% "
            f"-> {after.overflow_rate[4]*100:6.2f}% with 128 spare entries "
            f"({after.spare_allocations[4]} allocations)"
        )
        assert after.overflow_rate[4] <= before.overflow_rate[4]
    by_alias = {s.alias: s for s in plain}
    spared_by = {s.alias: s for s in spared}
    # On the stressed benchmarks the pool must actually be used and help.
    for alias in ("sleepy", "temple"):
        assert spared_by[alias].spare_allocations[4] > 0
        assert spared_by[alias].overflow_rate[4] < by_alias[alias].overflow_rate[4]


def test_cpu_fallback_triggers_on_overflow_threshold(benchmark):
    """A tight threshold flags overflow-heavy frames for software CD."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    from repro.gpu.config import GPUConfig
    from repro.gpu.pipeline import GPU
    from repro.scenes.benchmarks import make_temple

    config = (
        GPUConfig()
        .with_screen(400, 240)
        .with_rbcd(list_length=4, cpu_fallback_overflow_rate=0.01)
    )
    workload = make_temple(detail=DETAIL)
    gpu = GPU(config, rbcd_enabled=True)
    fallbacks = 0
    for t in workload.times(4):
        result = gpu.render_frame(workload.scene.frame_at(float(t), config))
        fallbacks += int(result.cpu_fallback)
    assert fallbacks > 0

    # A permissive threshold (the default) never falls back.
    config2 = GPUConfig().with_screen(400, 240).with_rbcd(list_length=4)
    gpu2 = GPU(config2, rbcd_enabled=True)
    result = gpu2.render_frame(workload.scene.frame_at(0.0, config2))
    assert not result.cpu_fallback
