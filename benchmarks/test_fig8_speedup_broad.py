"""Figure 8a: RBCD speedup versus the CPU broad-CD baseline.

Paper: geomean ~250x with one ZEB, ~600x with two ZEBs.  The shape to
hold: RBCD wins by orders of magnitude, and two ZEBs beat one on every
benchmark.
"""

from repro.experiments import figures
from benchmarks.conftest import show


def test_fig8a_speedup_vs_broad(paper_runs, benchmark):
    fig = benchmark.pedantic(
        figures.fig8a_speedup_broad, args=(paper_runs,), rounds=1, iterations=1
    )
    show(fig)
    geomean_1 = fig.value("1 ZEB", "geo.mean")
    geomean_2 = fig.value("2 ZEB", "geo.mean")
    # Orders-of-magnitude win (paper: 250x / 600x).
    assert geomean_1 > 50
    assert geomean_2 > 100
    # Two ZEBs reduce the marginal GPU time on every benchmark.
    for run in paper_runs:
        assert fig.value("2 ZEB", run.alias) >= fig.value("1 ZEB", run.alias)
