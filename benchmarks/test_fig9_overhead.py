"""Figure 9: GPU time and energy with RBCD, normalized to the baseline.

Paper: time overhead 5.4 % (1 ZEB) -> 3 % (2 ZEBs); energy overhead
5.1 % -> 3.5 %.  Going from one to two ZEBs removes most Tile-Scheduler
stalls.
"""

from repro.experiments import figures
from benchmarks.conftest import show


def test_fig9a_normalized_time(paper_runs, benchmark):
    fig = benchmark.pedantic(
        figures.fig9a_normalized_time, args=(paper_runs,), rounds=1, iterations=1
    )
    show(fig)
    geomean_1 = fig.value("1 ZEB", "geo.mean")
    geomean_2 = fig.value("2 ZEB", "geo.mean")
    # Single-digit-percent overhead, improved by the second ZEB.
    assert 1.0 < geomean_2 <= geomean_1 < 1.15
    for run in paper_runs:
        assert fig.value("2 ZEB", run.alias) <= fig.value("1 ZEB", run.alias)


def test_fig9b_normalized_energy(paper_runs, benchmark):
    fig = benchmark.pedantic(
        figures.fig9b_normalized_energy, args=(paper_runs,), rounds=1, iterations=1
    )
    show(fig)
    geomean_2 = fig.value("2 ZEB", "geo.mean")
    assert 1.0 < geomean_2 < 1.15
    for run in paper_runs:
        assert fig.value("2 ZEB", run.alias) <= fig.value("1 ZEB", run.alias) + 1e-9


def test_stall_reduction_from_second_zeb(paper_runs, benchmark):
    """The mechanism behind Figure 9: the second ZEB removes nearly all
    Rasterizer stalls (Section 5.2)."""
    benchmark.pedantic(lambda: paper_runs, rounds=1, iterations=1)
    for run in paper_runs:
        stall_1 = run.rbcd_stats[1].raster_stall_cycles
        stall_2 = run.rbcd_stats[2].raster_stall_cycles
        assert stall_2 < stall_1
        assert stall_2 < 0.4 * stall_1 + 1e-9, run.alias
