"""Shared benchmark configuration.

All figure benches run the paper's full setup — WVGA (800x480), the
four Table-1 workloads, both ZEB counts — through the memoized runner,
so one pytest session simulates each configuration exactly once no
matter how many benches consume it.

Every bench prints its figure as an ASCII table (visible with ``-s`` or
in the captured output) and asserts the *shape* constraints the paper's
conclusions rest on; absolute numbers are recorded for EXPERIMENTS.md,
not asserted.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_all_benchmarks, run_overflow_sweeps

# The paper's evaluation setup.
WIDTH, HEIGHT = 800, 480
FRAMES = 8
DETAIL = 2
ZEB_COUNTS = (1, 2)

# Reduced setup for the tile-cache ablation: cross-frame redundancy is
# resolution-independent, so a smaller screen keeps the on/off sweep
# cheap while the hit-rate ordering stays representative.
TILECACHE_WIDTH, TILECACHE_HEIGHT = 400, 240
TILECACHE_FRAMES = 4


@pytest.fixture(scope="session")
def paper_runs():
    """All four benchmarks under every system (shared across benches)."""
    return run_all_benchmarks(
        width=WIDTH, height=HEIGHT, frames=FRAMES, detail=DETAIL,
        zeb_counts=ZEB_COUNTS,
    )


@pytest.fixture(scope="session")
def tilecache_runs():
    """Schema-v5 bench documents for every workload, cache off and on
    (shared by the tile-cache ablation benches).

    Both documents come from the same harness, so every deterministic
    v4-era number must match between them — the ablation benches
    assert it, which makes this fixture a full-size differential test
    of the replay path on top of the figures it feeds.
    """
    from repro.experiments.bench import run_bench
    from repro.scenes.benchmarks import BENCHMARKS

    return {
        enabled: run_bench(
            list(BENCHMARKS),
            width=TILECACHE_WIDTH, height=TILECACHE_HEIGHT,
            frames=TILECACHE_FRAMES, detail=1,
            tile_cache=enabled,
        )
        for enabled in (False, True)
    }


@pytest.fixture(scope="session")
def overflow_sweeps():
    """Table-3 ZEB list-length sweeps (shared across benches)."""
    return run_overflow_sweeps(
        width=WIDTH, height=HEIGHT, frames=FRAMES, detail=DETAIL,
        m_values=(4, 8, 16),
    )


def show(figure_data) -> None:
    from repro.experiments import tables

    print()
    print(tables.render_figure(figure_data))
    print(tables.render_comparison(figure_data))
