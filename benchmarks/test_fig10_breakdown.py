"""Figure 10: GPU time breakdown between Geometry and Raster pipelines.

Paper: the Raster pipeline dominates on every benchmark (its computing
requirements are "much higher"), which is why deferred culling's extra
geometry-side work (+32 % tile-cache stores) barely moves total time.
"""

from repro.experiments import figures
from benchmarks.conftest import show


def test_fig10_time_breakdown(paper_runs, benchmark):
    fig = benchmark.pedantic(
        figures.fig10_time_breakdown, args=(paper_runs,), rounds=1, iterations=1
    )
    show(fig)
    for run in paper_runs:
        raster = fig.value("Raster", run.alias)
        geometry = fig.value("Geometry", run.alias)
        assert raster + geometry == 1.0 or abs(raster + geometry - 1.0) < 1e-9
        assert raster > geometry, f"{run.alias}: geometry-bound GPU"
        assert raster > 0.6


def test_geometry_pipeline_overhead_small(paper_runs, benchmark):
    """Section 5.2: deferred culling adds tile-cache *stores* on the
    geometry side, but the geometry pipeline stays the minor cost, so
    the extra work barely moves total GPU time."""
    benchmark.pedantic(lambda: paper_runs, rounds=1, iterations=1)
    for run in paper_runs:
        base = run.baseline_stats
        rbcd = run.rbcd_stats[2]
        store_growth = rbcd.tile_cache_stores / base.tile_cache_stores
        time_growth = rbcd.geometry_cycles / base.geometry_cycles
        assert store_growth > 1.05, run.alias
        # Geometry time grows at most as fast as the store stream (the
        # Polygon List Builder is one of several pipelined stages).
        assert time_growth <= store_growth + 1e-9, run.alias
        # And geometry remains the minor pipeline even with the growth.
        geometry_share = rbcd.geometry_cycles / rbcd.gpu_cycles
        assert geometry_share < 0.3, run.alias
