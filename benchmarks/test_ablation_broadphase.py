"""Ablation: the CPU baseline's own broad-phase algorithm.

The paper's broad baseline is the simplest all-pairs AABB test; this
ablation checks that giving the CPU a smarter sweep-and-prune broad
phase does not change the story — CD cost is dominated by the per-frame
AABB recompute over mesh vertices, which both algorithms share.
"""

import pytest

from repro.cpu.model import CPUModel
from repro.physics.counters import OpCounter
from repro.scenes.benchmarks import all_workloads
from benchmarks.conftest import DETAIL


def run_comparison():
    model = CPUModel()
    rows = []
    for workload in all_workloads(detail=DETAIL):
        worlds = {
            algo: workload.scene.collision_world(algo)
            for algo in ("bruteforce", "sap", "tree")
        }
        costs = {}
        for algo, world in worlds.items():
            total = OpCounter()
            for t in workload.times(4):
                workload.scene.sync_world(world, float(t))
                total += world.detect("broad").ops
            costs[algo] = model.price(total)
        rows.append(
            (workload.alias, costs["bruteforce"], costs["sap"], costs["tree"])
        )
    return rows


def test_smarter_broadphases_do_not_change_the_story(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    for alias, brute, sap, tree in rows:
        sap_ratio = sap.seconds / brute.seconds
        tree_ratio = tree.seconds / brute.seconds
        print(f"  {alias:7s} SAP/brute: {sap_ratio:.3f}   DBVT/brute: {tree_ratio:.3f}")
        # Smarter pair managers save pair tests but the AABB recompute
        # dominates: CPU broad cost moves by far less than the 2-3
        # orders of magnitude separating it from RBCD.
        assert 0.3 < sap_ratio < 1.3, alias
        assert 0.3 < tree_ratio < 1.3, alias
