"""Scalability: CD cost versus collisionable object count.

Section 2: "CD techniques are intrinsically quadratic with respect to
the number of objects and their surfaces."  This bench sweeps the
object count of a stress scene and checks the asymmetric growth:

* CPU broad-CD time grows with the object count (O(n^2) pair tests on
  top of O(n * V) AABB refits, the latter dominating at these sizes);
* RBCD's marginal GPU cost tracks the collisionable *pixels*, which the
  fixed screen bounds — so the advantage stays at orders of magnitude
  across the sweep instead of eroding with scene complexity.
"""

import functools

import pytest

from repro.experiments.systems import run_workload
from repro.gpu.config import GPUConfig
from repro.scenes.benchmarks import make_stress

SIZES = (6, 12, 24)
CFG = GPUConfig().with_screen(400, 240)


@functools.cache
def run_sweep():
    results = {}
    for n in SIZES:
        workload = make_stress(num_objects=n, detail=1)
        results[n] = run_workload(workload, CFG, frames=3)
    return results


def test_speedup_widens_with_object_count(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    speedups = {}
    cpu_times = {}
    for n, run in results.items():
        delta = run.rbcd_extra_seconds(2)
        speedups[n] = run.cpu_broad.seconds / delta
        cpu_times[n] = run.cpu_broad.seconds
        print(
            f"  n={n:3d}: CPU broad {run.cpu_broad.seconds * 1e3:8.2f} ms, "
            f"RBCD marginal {delta * 1e6:8.1f} us, speedup {speedups[n]:8.1f}x"
        )
    # CPU CD cost grows markedly with object count...
    assert cpu_times[SIZES[-1]] > 2.5 * cpu_times[SIZES[0]]
    # ...while RBCD stays orders of magnitude ahead at every size (the
    # screen's pixel budget bounds its marginal cost):
    for n in SIZES:
        assert speedups[n] > 100, f"speedup collapsed at n={n}"


def test_rbcd_detection_still_correct_at_scale(benchmark):
    """At the largest size, RBCD pairs remain a subset of broad-phase
    pairs and agree with the narrow phase on most contacts."""
    results = benchmark.pedantic(lambda: run_sweep(), rounds=1, iterations=1)
    run = results[SIZES[-1]]
    for rbcd, broad in zip(run.rbcd_pairs, run.cpu_broad_pairs):
        assert rbcd <= broad
    found_any = any(run.rbcd_pairs)
    assert found_any
