"""Ablation: RBCD overhead on a deferred-shading (TBDR) GPU.

Section 3.1 contrasts the TBR baseline with PowerVR's TBDR, which
"guarantees that the Fragment Processor is used only for those
fragments that will be part of the final image".  Less fragment work
means less slack to hide RBCD's extra raster cycles behind — so the
*relative* overhead can only grow.  The bench quantifies it and checks
the conclusion still holds (single-digit-percent range).
"""

import functools

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import all_workloads

CFG = GPUConfig().with_screen(400, 240)


@functools.cache
def run_modes():
    results = {}
    for workload in all_workloads(detail=1):
        per_mode = {}
        for mode in ("tbr", "tbdr"):
            base = GPU(CFG, rbcd_enabled=False, rendering_mode=mode)
            rbcd = GPU(CFG, rbcd_enabled=True, rendering_mode=mode)
            base_cycles = rbcd_cycles = 0.0
            for t in workload.times(3):
                frame = workload.scene.frame_at(float(t), CFG)
                base_cycles += base.render_frame(frame).stats.gpu_cycles
                rbcd_cycles += rbcd.render_frame(frame).stats.gpu_cycles
            per_mode[mode] = rbcd_cycles / base_cycles
        results[workload.alias] = per_mode
    return results


def test_rbcd_overhead_under_tbdr(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    print()
    for alias, per_mode in results.items():
        print(
            f"  {alias:7s} normalized time — TBR: {per_mode['tbr']:.4f}, "
            f"TBDR: {per_mode['tbdr']:.4f}"
        )
        # Overhead exists in both modes and stays moderate under TBDR.
        assert per_mode["tbr"] > 1.0
        assert per_mode["tbdr"] > 1.0
        assert per_mode["tbdr"] < 1.30, alias


def test_tbdr_overhead_at_least_tbr(benchmark):
    """With less fragment work to hide behind, the relative overhead
    under TBDR is at least the TBR overhead (ties allowed when raster
    is the bottleneck either way)."""
    benchmark.pedantic(lambda: run_modes(), rounds=1, iterations=1)
    for alias, per_mode in run_modes().items():
        assert per_mode["tbdr"] >= per_mode["tbr"] - 1e-6, alias
