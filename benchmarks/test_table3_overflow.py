"""Table 3: ZEB list overflow percentage for M = 4, 8, 16.

Paper: average 3.68 % / 0.08 % / 0 %, with cap and crazy low and
sleepy/temple high at M=4; at M=8 every collision is still detected
despite residual overflow; at M=16 overflow (essentially) vanishes.
"""

from repro.experiments import figures
from benchmarks.conftest import show


def test_table3_overflow_rates(overflow_sweeps, benchmark):
    table = benchmark.pedantic(
        figures.table3_overflow, args=(overflow_sweeps,), rounds=1, iterations=1
    )
    show(table)
    # Monotone decrease with M for every benchmark.
    for sweep in overflow_sweeps:
        assert (
            sweep.overflow_rate[4] >= sweep.overflow_rate[8] >= sweep.overflow_rate[16]
        )
    # The concentrated benchmarks stress the ZEB far more than the
    # spread ones (the paper's explanation of Table 3).
    by_alias = {s.alias: s for s in overflow_sweeps}
    spread_max = max(by_alias["cap"].overflow_rate[4], by_alias["crazy"].overflow_rate[4])
    stacked_min = min(by_alias["sleepy"].overflow_rate[4], by_alias["temple"].overflow_rate[4])
    assert stacked_min > spread_max
    # M=16 is (essentially) overflow-free.
    for sweep in overflow_sweeps:
        assert sweep.overflow_rate[16] < 0.002


def test_all_collisions_detected_at_m8(overflow_sweeps, benchmark):
    """"Despite the overflows, we verified that all the collisions are
    still detected" (Section 5.3) — objects cover many pixels, so a
    pair lost in one overflowing list is found in another."""
    benchmark.pedantic(lambda: overflow_sweeps, rounds=1, iterations=1)
    for sweep in overflow_sweeps:
        assert sweep.all_collisions_detected(8, 16), sweep.alias
