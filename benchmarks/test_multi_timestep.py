"""Multiple physics time steps per rendered frame (Section 3.6).

"Executing multiple time steps per frame can help improve the softness
and realism of the animations" — RBCD supports them as raster-only
passes between rendered frames.  This bench runs k in {1, 2, 4} time
steps per frame and compares the GPU cost of the extra passes against
what the CPU baseline would pay for the same CD rate.
"""

import functools

import pytest

from repro.cpu.model import CPUModel
from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.physics.counters import OpCounter
from repro.scenes.benchmarks import make_cap

CFG = GPUConfig().with_screen(400, 240)
RATES = (1, 2, 4)
FRAMES = 3


@functools.cache
def run_rates():
    workload = make_cap(detail=1)
    gpu = GPU(CFG, rbcd_enabled=True)
    world = workload.scene.collision_world()
    cpu = CPUModel()

    results = {}
    times = workload.times(FRAMES)
    for k in RATES:
        gpu_cycles = 0.0
        cpu_seconds = 0.0
        pair_sets = []
        for i, t in enumerate(times):
            # Rendered frame at t plus (k-1) raster-only CD passes at
            # interpolated sub-times.
            sub_times = [float(t)]
            if i + 1 < len(times):
                step = (float(times[i + 1]) - float(t)) / k
                sub_times += [float(t) + step * j for j in range(1, k)]
            for j, sub in enumerate(sub_times):
                frame = workload.scene.frame_at(
                    sub, CFG, raster_only=(j > 0)
                )
                result = gpu.render_frame(frame)
                gpu_cycles += result.stats.gpu_cycles
                pair_sets.append(
                    {(p.id_a, p.id_b) for p in result.collisions.pairs}
                )
                workload.scene.sync_world(world, sub)
                cpu_seconds += cpu.price(world.detect("broad").ops).seconds
        results[k] = {
            "gpu_seconds": CFG.cycles_to_seconds(gpu_cycles),
            "cpu_cd_seconds": cpu_seconds,
            "pair_sets": pair_sets,
        }
    return results


def test_extra_timesteps_scale_gracefully(benchmark):
    results = benchmark.pedantic(run_rates, rounds=1, iterations=1)
    print()
    base = results[1]["gpu_seconds"]
    for k in RATES:
        r = results[k]
        print(
            f"  {k} step(s)/frame: GPU {r['gpu_seconds'] * 1e3:7.3f} ms "
            f"(x{r['gpu_seconds'] / base:.2f}), CPU-CD equivalent "
            f"{r['cpu_cd_seconds'] * 1e3:7.2f} ms"
        )
    # Doubling the CD rate costs far less than doubling GPU time: the
    # extra passes skip fragment processing.
    assert results[2]["gpu_seconds"] < 1.7 * results[1]["gpu_seconds"]
    assert results[4]["gpu_seconds"] < 3.0 * results[1]["gpu_seconds"]
    # And the CPU-CD alternative scales linearly with the rate.
    assert results[4]["cpu_cd_seconds"] == pytest.approx(
        4 * results[1]["cpu_cd_seconds"] / 1.0, rel=0.35
    )


def test_finer_timesteps_catch_transient_contacts(benchmark):
    """More CD samples can only reveal more of the run's contacts."""
    benchmark.pedantic(lambda: run_rates(), rounds=1, iterations=1)
    results = run_rates()
    seen_1 = set().union(*results[1]["pair_sets"])
    seen_4 = set().union(*results[4]["pair_sets"])
    assert seen_1 <= seen_4
