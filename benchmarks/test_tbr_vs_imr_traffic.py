"""Section 3.1: the TBR-vs-IMR off-chip traffic trade, measured.

"With TBR, pixel overdraw still occurs but it happens in the local
buffer, which saves pixel-related off-chip memory bandwidth, relative
to IMR. ... geometry-related memory bandwidth is increased due to
storing and retrieving the geometry in the Tile Cache, but for most
current workloads the saved pixel traffic is greater than the increased
geometry traffic."
"""

import functools

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import all_workloads

CFG = GPUConfig().with_screen(400, 240)


@functools.cache
def run_traffic():
    results = {}
    for workload in all_workloads(detail=1):
        tbr_gpu = GPU(CFG, rbcd_enabled=False, rendering_mode="tbr")
        imr_gpu = GPU(CFG, rbcd_enabled=False, rendering_mode="imr")
        tbr_pixel = tbr_geom = imr_pixel = 0.0
        for t in workload.times(3):
            frame = workload.scene.frame_at(float(t), CFG)
            tbr = tbr_gpu.render_frame(frame).stats
            imr = imr_gpu.render_frame(frame).stats
            line = CFG.l2_cache.line_bytes
            tbr_pixel += tbr.color_writes * 4
            tbr_geom += (
                tbr.tile_cache_store_misses + tbr.tile_cache_load_misses
            ) * line
            imr_pixel += imr.dram_bytes_written + imr.early_z_tests * 4
        results[workload.alias] = (tbr_pixel, tbr_geom, imr_pixel)
    return results


def test_tbr_saves_pixel_traffic(benchmark):
    results = benchmark.pedantic(run_traffic, rounds=1, iterations=1)
    print()
    for alias, (tbr_pixel, tbr_geom, imr_pixel) in results.items():
        saved = imr_pixel - tbr_pixel
        print(
            f"  {alias:7s} pixel traffic: IMR {imr_pixel / 1e3:8.0f} KB vs "
            f"TBR {tbr_pixel / 1e3:8.0f} KB; TBR geometry cost "
            f"{tbr_geom / 1e3:8.0f} KB"
        )
        # TBR's pixel saving exists on every benchmark...
        assert saved > 0, alias
        # ...and (the paper's claim for "most current workloads")
        # exceeds the added geometry traffic.
        assert saved > tbr_geom, alias
