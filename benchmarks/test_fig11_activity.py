"""Figure 11: raster-side activity factors, RBCD / baseline.

Paper averages: tile-cache loads +19.3 %, primitives +18.4 %,
fragments +6.3 %, raster cycles +3.7 %.  The ordering is the shape:
deferred culling inflates primitive traffic the most, fragments less
(tagged primitives are small), and busy cycles least (setup-dominated
extra primitives are cheap next to pixel fill).
"""

from repro.experiments import figures
from benchmarks.conftest import show


def test_fig11_activity_factors(paper_runs, benchmark):
    fig = benchmark.pedantic(
        figures.fig11_activity_factors, args=(paper_runs,), rounds=1, iterations=1
    )
    show(fig)
    loads = fig.value("TC loads", "geo.mean")
    prims = fig.value("Primitives", "geo.mean")
    frags = fig.value("Fragments", "geo.mean")
    cycles = fig.value("Raster cycles", "geo.mean")
    # All factors grow, primitives/loads the most, fragments much less.
    assert 1.0 < frags < prims
    assert 1.0 < frags < loads
    assert prims < 1.6
    assert frags < 1.2
    assert 1.0 < cycles < prims


def test_fragments_grow_less_than_primitives_everywhere(paper_runs, benchmark):
    """Tagged-to-be-culled primitives belong to high-detail models and
    are smaller than average, so fragment growth lags primitive growth
    on every benchmark (Section 5.2)."""
    benchmark.pedantic(lambda: paper_runs, rounds=1, iterations=1)
    for run in paper_runs:
        base, rbcd = run.baseline_stats, run.rbcd_stats[2]
        prim_ratio = rbcd.prims_rasterized / base.prims_rasterized
        frag_ratio = rbcd.fragments_produced / base.fragments_produced
        assert frag_ratio < prim_ratio, run.alias
