"""Figure 8b: energy reduction of RBCD versus CPU broad-CD.

Paper: geomean ~273x with one ZEB, ~448x with two (i.e. 99.8 % of the
CD energy removed).
"""

from repro.experiments import figures
from benchmarks.conftest import show


def test_fig8b_energy_reduction_vs_broad(paper_runs, benchmark):
    fig = benchmark.pedantic(
        figures.fig8b_energy_broad, args=(paper_runs,), rounds=1, iterations=1
    )
    show(fig)
    geomean_2 = fig.value("2 ZEB", "geo.mean")
    assert geomean_2 > 50
    # The headline claim: RBCD removes the overwhelming majority (>98 %)
    # of the CD energy (paper: 99.8 %).
    assert 1.0 / geomean_2 < 0.02
    for run in paper_runs:
        assert fig.value("2 ZEB", run.alias) > 20
