"""Figure 2: false-collision area of AABB, hull-GJK and RBCD.

The paper's accuracy argument: a concave object's AABB adds a large
false-collisionable area, its convex hull a smaller one, and RBCD's
discretized shape a much smaller one still.  We sweep a probe through
the L-shape's concave notch (where only the false areas live) and count
false positives per method.
"""

import numpy as np
import pytest

from repro.core import RBCDSystem
from repro.geometry.aabb import AABB
from repro.geometry.primitives import make_box, make_concave_l
from repro.geometry.vec import Mat4, Vec3
from repro.physics.counters import OpCounter
from repro.physics.gjk import gjk_intersect
from repro.physics.shapes import ConvexShape
from repro.scenes.camera import Camera

L_SHAPE = make_concave_l(1.0, 0.4, 0.4)
PROBE = make_box(Vec3(0.1, 0.1, 0.1))
CAMERA = Camera(eye=Vec3(0.5, 0.5, 5.0), target=Vec3(0.5, 0.5, 0.0))

# Probe centres sampled inside the concave notch: clear of the arms
# (x, y > 0.4 + probe half extent) and inside the hull's diagonal face
# (x + y + 2*half <= 1.4 + 2*half).  The true answer is "no collision"
# at all of them, yet each probe is inside both the AABB and the hull.
NOTCH_POINTS = [
    (x, y)
    for x in np.linspace(0.55, 0.78, 4)
    for y in np.linspace(0.55, 0.78, 4)
    if x + y <= 1.58
]


def run_sweep():
    system = RBCDSystem(resolution=(320, 320))
    l_box = L_SHAPE.aabb()
    l_hull = ConvexShape(L_SHAPE.vertices)
    probe_hull_template = PROBE.vertices

    aabb_fp = hull_fp = rbcd_fp = 0
    for x, y in NOTCH_POINTS:
        model = Mat4.translation(Vec3(x, y, 0.0))
        probe_box = PROBE.aabb().transformed(model)
        if l_box.overlaps(probe_box):
            aabb_fp += 1
        probe_shape = ConvexShape(probe_hull_template)
        probe_shape.update_transform(model)
        if gjk_intersect(l_hull, probe_shape, OpCounter()).intersecting:
            hull_fp += 1
        result = system.detect(
            [(1, L_SHAPE, Mat4.identity()), (2, PROBE, model)], CAMERA
        )
        if (1, 2) in result.pairs:
            rbcd_fp += 1
    return aabb_fp, hull_fp, rbcd_fp


def test_fig2_false_collision_ordering(benchmark):
    aabb_fp, hull_fp, rbcd_fp = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    total = len(NOTCH_POINTS)
    print(
        f"\nFigure 2 (false positives in the concave notch, {total} probes):"
        f"\n  AABB broad phase : {aabb_fp}/{total}"
        f"\n  GJK on hull      : {hull_fp}/{total}"
        f"\n  RBCD             : {rbcd_fp}/{total}"
    )
    # The paper's ordering: AABB >= hull > RBCD, with RBCD clean.
    assert aabb_fp == total            # the notch is inside the AABB
    assert hull_fp == total            # and inside the convex hull
    assert rbcd_fp == 0                # pixel-accurate: no false hits


def test_rbcd_still_detects_true_contact(benchmark):
    """Accuracy must not come from under-reporting: a probe overlapping
    the L's arm is detected."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    system = RBCDSystem(resolution=(320, 320))
    model = Mat4.translation(Vec3(0.5, 0.35, 0.0))  # overlaps the arm
    result = system.detect(
        [(1, L_SHAPE, Mat4.identity()), (2, PROBE, model)], CAMERA
    )
    assert (1, 2) in result.pairs
