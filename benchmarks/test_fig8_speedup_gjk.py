"""Figure 8c: RBCD speedup versus the CPU broad+narrow (GJK) baseline.

Paper: geomean ~1400x / ~3400x (1 / 2 ZEBs) — strictly higher than the
broad-only comparison of Figure 8a because the GJK pipeline costs more.
"""

from repro.experiments import figures
from benchmarks.conftest import show


def test_fig8c_speedup_vs_gjk(paper_runs, benchmark):
    fig = benchmark.pedantic(
        figures.fig8c_speedup_gjk, args=(paper_runs,), rounds=1, iterations=1
    )
    show(fig)
    fig8a = figures.fig8a_speedup_broad(paper_runs)
    for label in ("1 ZEB", "2 ZEB"):
        # GJK-CD costs more than broad-CD, so its speedups are higher,
        # benchmark by benchmark (the 8c-vs-8a crossover direction).
        for run in paper_runs:
            assert fig.value(label, run.alias) > fig8a.value(label, run.alias)
    assert fig.value("2 ZEB", "geo.mean") > 200
