"""Sensitivity to the ZEB element's depth-field width.

The paper fixes 32 bits per ZEB element but not the field split; this
repo assumes 18 z bits + 13 id bits + 1 face bit.  This bench sweeps
the depth width and shows why ~18 bits is the right region: much
narrower and quantization collapses distinct surfaces into spurious
contacts; the assumed width reproduces the fine-grained answer.
"""

import functools

import pytest

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from tests.conftest import two_boxes_frame

# Keep the element at 32 bits: z width trades against id width.
SPLITS = {6: 25, 10: 21, 14: 17, 18: 13}
BASE = GPUConfig().with_screen(320, 200)


@functools.cache
def run_sweep():
    """Pairs found for a separated-but-close box pair, per z width."""
    results = {}
    for z_bits, id_bits in SPLITS.items():
        config = BASE.with_rbcd(z_bits=z_bits, id_bits=id_bits)
        gpu = GPU(config, rbcd_enabled=True)
        # Boxes separated by a thin real gap: z-range separation along
        # the view axis is what the quantizer must resolve.
        from repro.geometry.primitives import make_box
        from repro.geometry.vec import Mat4, Vec3
        from repro.gpu.commands import DrawCommand, Frame
        from tests.conftest import simple_projection, simple_view

        box = make_box(Vec3(0.5, 0.5, 0.5))
        # Far box drawn first: when quantization collapses the facing
        # surfaces to one code, arrival order interleaves the intervals
        # ([near [far ]near ]far) and a false contact appears.  (Drawn
        # near-first the tie nests benignly — the adversarial order is
        # the one that exposes the precision loss.)
        draws = (
            DrawCommand(box, Mat4.translation(Vec3(0.0, 0.0, -0.53)), object_id=2),
            DrawCommand(box, Mat4.translation(Vec3(0.0, 0.0, 0.53)), object_id=1),
        )
        frame = Frame(
            draws=draws, view=simple_view(),
            projection=simple_projection(BASE.screen_width / BASE.screen_height),
        )
        result = gpu.render_frame(frame)
        results[z_bits] = (1, 2) in result.collisions
    return results


def test_depth_width_sensitivity(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print()
    for z_bits, false_contact in results.items():
        verdict = "FALSE CONTACT" if false_contact else "correctly separated"
        print(f"  z_bits={z_bits:2d} (id_bits={SPLITS[z_bits]:2d}): {verdict}")
    # The assumed 18-bit depth resolves the 0.06-unit gap...
    assert results[18] is False
    assert results[14] is False
    # ...while a few bits of depth cannot (quantization merges the
    # surfaces into one code -> interleaved intervals -> false pair).
    assert results[6] is True


def test_monotone_in_precision(benchmark):
    """More depth bits never *create* false contacts."""
    benchmark.pedantic(lambda: run_sweep(), rounds=1, iterations=1)
    results = run_sweep()
    widths = sorted(results)
    # Once a width is clean, all wider widths stay clean.
    clean = False
    for width in widths:
        if not results[width]:
            clean = True
        if clean:
            assert results[width] is False, width
