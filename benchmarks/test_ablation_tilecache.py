"""Ablation: cross-frame tile redundancy elimination.

*Rendering Elimination* (same group as the source paper) reports that
animated scenes keep large screen regions unchanged frame to frame; the
tile cache (:mod:`repro.gpu.tilecache`) exploits exactly that for the
collision path.  This bench quantifies the claim on the four Table-1
workloads and on a fully static control:

* with the cache ON versus OFF, every deterministic v4-era bench
  number is **identical** (replay is exact — the ablation doubles as a
  full-size differential test);
* every workload shows a nonzero hit rate — the scenes all keep some
  static collisionable geometry (floors, props) in view — and the
  modelled savings beat the signature overhead, so effective cycles
  and joules are strictly lower;
* a "paused" animation (the same frame re-rendered) is the static
  limit: after the cold first frame, every lookup hits.
"""

import functools

from repro.gpu.config import GPUConfig
from repro.gpu.pipeline import GPU
from repro.scenes.benchmarks import workload_by_alias

from benchmarks.conftest import (
    TILECACHE_FRAMES,
    TILECACHE_HEIGHT,
    TILECACHE_WIDTH,
)

# Scene entry keys that must not move when the cache is switched on:
# everything deterministic that existed before schema v5.
_INVARIANT_KEYS = ("totals", "energy", "cases")


def test_replay_is_exact_at_bench_scale(tilecache_runs):
    baseline, cached = tilecache_runs[False], tilecache_runs[True]
    for alias, base_entry in baseline["scenes"].items():
        cached_entry = cached["scenes"][alias]
        for key in _INVARIANT_KEYS:
            assert cached_entry[key] == base_entry[key], (
                f"{alias}.{key} moved when the cache was enabled"
            )
        # Counters: identical except the additive gpu.tilecache.* set.
        base_counters = base_entry["counters"]
        for name, value in base_counters.items():
            assert cached_entry["counters"][name] == value, (
                f"{alias}.counters.{name} moved when the cache was enabled"
            )
        extra = set(cached_entry["counters"]) - set(base_counters)
        assert extra and all(n.startswith("gpu.tilecache.") for n in extra)


# Scenes whose static collisionable geometry carries enough ZEB work
# for replay to beat the signature overhead.  ``sleepy`` is the honest
# counter-example: its redundant tiles hold so few collisionable
# fragments that the per-lookup compare costs more cycles than replay
# saves — caching is a knob, not a free lunch, and the bench records
# both sides.
_NET_WIN_SCENES = ("cap", "crazy", "temple")


def test_every_workload_hits_and_saves(tilecache_runs, benchmark):
    benchmark.pedantic(lambda: tilecache_runs, rounds=1, iterations=1)
    print()
    for alias, entry in tilecache_runs[True]["scenes"].items():
        tc = entry["tilecache"]
        print(
            f"  {alias:7s} hit rate {tc['hit_rate']:.1%} "
            f"({tc['hits']}/{tc['lookups']}), "
            f"effective cycles x{tc['effective_gpu_cycles'] / entry['totals']['gpu_cycles']:.4f}, "
            f"effective energy x{tc['effective_total_j'] / entry['energy']['total_j']:.4f}"
        )
        assert tc["enabled"] and tc["hits"] > 0, alias
        assert tc["collisions"] == 0, alias
        assert tc["per_frame_hits"][0] == 0, f"{alias}: frame 0 must be cold"
    for alias in _NET_WIN_SCENES:
        entry = tilecache_runs[True]["scenes"][alias]
        tc = entry["tilecache"]
        # Net win: replayed insertion+overlap work dwarfs the
        # per-lookup signature compare.
        assert tc["cycles_saved"] > tc["signature_cycles"], alias
        assert tc["effective_gpu_cycles"] < entry["totals"]["gpu_cycles"], alias
        assert tc["effective_total_j"] < entry["energy"]["total_j"], alias


@functools.cache
def run_paused_animation():
    """The static-region limit: re-render one fixed frame N times."""
    config = (
        GPUConfig()
        .with_screen(TILECACHE_WIDTH, TILECACHE_HEIGHT)
        .with_tile_cache(True)
    )
    workload = workload_by_alias("cap", detail=1)
    frame = workload.scene.frame_at(1.0, config)
    per_frame = []
    with GPU(config, rbcd_enabled=True) as gpu:
        for _ in range(TILECACHE_FRAMES):
            result = gpu.render_frame(frame)
            counters = result.tilecache.as_dict()
            per_frame.append((
                counters["gpu.tilecache.hits"],
                counters["gpu.tilecache.lookups"],
            ))
    return per_frame


def test_static_limit_hits_everything_after_warmup(benchmark):
    per_frame = benchmark.pedantic(
        run_paused_animation, rounds=1, iterations=1
    )
    print()
    for i, (hits, lookups) in enumerate(per_frame):
        print(f"  paused frame {i}: {hits}/{lookups} hits")
    first_hits, _ = per_frame[0]
    assert first_hits == 0  # cold cache
    for hits, lookups in per_frame[1:]:
        assert lookups > 0 and hits == lookups  # 100% after warmup
