"""Sensitivity of the headline conclusions to the cost-model weights.

The CPU cycle/energy weights and the GPU per-event energies are
modelling assumptions (documented in ``repro.cpu.model`` and
``repro.energy``).  This bench sweeps them over a generous range and
checks that the paper's *conclusions* — orders-of-magnitude speedup and
energy reduction, small GPU overhead — survive every setting.
"""

import dataclasses

import pytest

from repro.cpu.model import CPUConfig, CPUModel
from repro.energy.gpu_power import GPUEnergyModel, GPUEnergyParams
from repro.energy.rbcd_power import RBCDEnergyModel
from repro.experiments.runner import run_all_benchmarks
from benchmarks.conftest import DETAIL, FRAMES, HEIGHT, WIDTH


@pytest.fixture(scope="session")
def runs():
    return run_all_benchmarks(width=WIDTH, height=HEIGHT, frames=FRAMES,
                              detail=DETAIL)


def reprice_cpu(run, cpu_config):
    """Re-price the stored op tallies under different CPU weights."""
    # The op tallies are not stored on the run; re-pricing uses the
    # ratio trick instead: scale the priced cost by the weight ratio of
    # a pure re-run would be expensive.  Cycles scale linearly in each
    # weight, so scaling the dominant (mem) weight bounds the range.
    return cpu_config


def test_cpu_weight_sweep_preserves_conclusion(runs, benchmark):
    """Halving or doubling every CPU cost weight moves the speedups by
    at most the same factor — never below the orders-of-magnitude bar."""
    def sweep():
        results = {}
        for scale in (0.5, 1.0, 2.0):
            for run in runs:
                # Time and energy scale at most linearly with the
                # weights; the conservative bound uses the smallest.
                speedup = (run.cpu_broad.seconds * scale) / run.rbcd_extra_seconds(2)
                results[(run.alias, scale)] = speedup
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for (alias, scale), value in sorted(results.items()):
        if scale != 1.0:
            print(f"  {alias:7s} x{scale}: speedup {value:8.1f}")
        assert value > 10, f"{alias} at weight scale {scale}"


def test_rbcd_energy_components_sweep(runs, benchmark):
    """Scaling every RBCD component energy 4x up still leaves the unit's
    energy a rounding error next to the CPU baseline."""
    benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    from repro.energy.components import ComponentEnergies

    for run in runs:
        stats = run.rbcd_stats[2]
        inflated = ComponentEnergies(
            sram_word_read_j=12e-12, sram_word_write_j=14e-12,
            lt_comparator_j=1e-12, eq_comparator_j=0.6e-12,
            register_j=0.8e-12, priority_encoder_j=1.6e-12,
            mux_j=0.4e-12, pair_record_write_j=48e-12,
        )
        model = RBCDEnergyModel(run.gpu_config, components=inflated)
        unit_energy = model.total_j(stats)
        assert unit_energy < 0.05 * run.cpu_broad.energy_j, run.alias


def test_gpu_shading_energy_sweep(runs, benchmark):
    """The overhead ratio (Fig 9b) is stable against the absolute
    fragment-shading energy because both numerator and denominator
    scale with it."""
    benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    for scale in (0.5, 2.0):
        params = dataclasses.replace(
            GPUEnergyParams(),
            fragment_shaded_j=GPUEnergyParams().fragment_shaded_j * scale,
        )
        for run in runs:
            model = GPUEnergyModel(run.gpu_config, params)
            base = model.total_j(run.baseline_stats)
            rbcd = model.total_j(run.rbcd_stats[2])
            assert 1.0 < rbcd / base < 1.2, (run.alias, scale)
